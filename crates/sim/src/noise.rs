//! Gate-level noise models.
//!
//! The paper's future-work list (§VI) asks how NME wire cutting behaves
//! "in the presence of noise inherent in contemporary quantum devices".
//! This module provides the standard digital noise model: a CPTP channel
//! injected after every gate (and optionally before every measurement),
//! executed exactly on the density-matrix backend. Shot noise then sits
//! *on top of* the noise-induced bias, which no shot budget can remove —
//! the effect experiment E12 quantifies.

use crate::circuit::{Circuit, Op};
use crate::density::DensityMatrix;
use qlinalg::{c64, Matrix};

/// A single-qubit noise channel with closed-form Kraus operators.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum NoiseChannel {
    /// Depolarising with probability `p`: `ρ → (1−p)ρ + p·I/2`.
    Depolarizing(f64),
    /// Phase damping: Z error with probability `p`.
    Dephasing(f64),
    /// Bit flip: X error with probability `p`.
    BitFlip(f64),
    /// Amplitude damping with decay probability `γ`.
    AmplitudeDamping(f64),
}

impl NoiseChannel {
    /// The Kraus operators of the channel.
    pub fn kraus(self) -> Vec<Matrix> {
        match self {
            NoiseChannel::Depolarizing(p) => {
                assert!((0.0..=1.0).contains(&p));
                vec![
                    crate::pauli::Pauli::I.matrix().scale_re((1.0 - p).sqrt()),
                    crate::pauli::Pauli::X.matrix().scale_re((p / 3.0).sqrt()),
                    crate::pauli::Pauli::Y.matrix().scale_re((p / 3.0).sqrt()),
                    crate::pauli::Pauli::Z.matrix().scale_re((p / 3.0).sqrt()),
                ]
            }
            NoiseChannel::Dephasing(p) => {
                assert!((0.0..=1.0).contains(&p));
                vec![
                    crate::pauli::Pauli::I.matrix().scale_re((1.0 - p).sqrt()),
                    crate::pauli::Pauli::Z.matrix().scale_re(p.sqrt()),
                ]
            }
            NoiseChannel::BitFlip(p) => {
                assert!((0.0..=1.0).contains(&p));
                vec![
                    crate::pauli::Pauli::I.matrix().scale_re((1.0 - p).sqrt()),
                    crate::pauli::Pauli::X.matrix().scale_re(p.sqrt()),
                ]
            }
            NoiseChannel::AmplitudeDamping(g) => {
                assert!((0.0..=1.0).contains(&g));
                let mut k0 = Matrix::identity(2);
                k0[(1, 1)] = c64((1.0 - g).sqrt(), 0.0);
                let mut k1 = Matrix::zeros(2, 2);
                k1[(0, 1)] = c64(g.sqrt(), 0.0);
                vec![k0, k1]
            }
        }
    }
}

/// A circuit-level noise model: channels injected after each gate
/// (applied to every qubit the gate touches) and before each measurement.
#[derive(Clone, Debug, Default)]
pub struct NoiseModel {
    /// Channels applied to each operand qubit after every gate.
    pub after_gate: Vec<NoiseChannel>,
    /// Channels applied to the measured qubit before every measurement.
    pub before_measure: Vec<NoiseChannel>,
}

impl NoiseModel {
    /// The noiseless model.
    pub fn noiseless() -> Self {
        Self::default()
    }

    /// Uniform depolarising noise with probability `p` after every gate
    /// and before every measurement — the workhorse device model.
    pub fn depolarizing(p: f64) -> Self {
        Self {
            after_gate: vec![NoiseChannel::Depolarizing(p)],
            before_measure: vec![NoiseChannel::Depolarizing(p)],
        }
    }

    /// `true` when no noise is configured.
    pub fn is_noiseless(&self) -> bool {
        self.after_gate.is_empty() && self.before_measure.is_empty()
    }
}

/// Exactly evolves a density operator through `circuit` with the noise
/// model applied, summing all measurement branches (cf.
/// [`crate::executor::execute_density`], which is the noiseless special
/// case).
pub fn execute_density_noisy(
    circuit: &Circuit,
    input: &DensityMatrix,
    noise: &NoiseModel,
) -> DensityMatrix {
    assert_eq!(input.num_qubits(), circuit.num_qubits());
    assert!(circuit.num_clbits() <= 64);
    struct Branch {
        clbits: u64,
        rho: DensityMatrix,
    }
    let apply_noise = |rho: &mut DensityMatrix, channels: &[NoiseChannel], qubits: &[usize]| {
        for ch in channels {
            let kraus = ch.kraus();
            for &q in qubits {
                rho.apply_kraus(&kraus, &[q]);
            }
        }
    };
    let mut branches = vec![Branch {
        clbits: 0,
        rho: input.clone(),
    }];
    for instr in circuit.instructions() {
        match &instr.op {
            Op::Gate(g, qs) => {
                let m = g.matrix();
                for b in branches.iter_mut() {
                    if let Some(cond) = instr.condition {
                        if ((b.clbits >> cond.bit) & 1 == 1) != cond.value {
                            continue;
                        }
                    }
                    b.rho.apply_unitary(&m, qs);
                    apply_noise(&mut b.rho, &noise.after_gate, qs);
                }
            }
            Op::Measure { qubit, clbit } => {
                let mut next = Vec::with_capacity(branches.len() * 2);
                for mut b in branches.into_iter() {
                    if let Some(cond) = instr.condition {
                        if ((b.clbits >> cond.bit) & 1 == 1) != cond.value {
                            next.push(b);
                            continue;
                        }
                    }
                    apply_noise(&mut b.rho, &noise.before_measure, &[*qubit]);
                    let mut b0 = Branch {
                        clbits: b.clbits & !(1 << clbit),
                        rho: b.rho.clone(),
                    };
                    b0.rho.project(*qubit, false);
                    let mut b1 = Branch {
                        clbits: b.clbits | (1 << clbit),
                        rho: b.rho,
                    };
                    b1.rho.project(*qubit, true);
                    next.push(b0);
                    next.push(b1);
                }
                branches = next;
            }
            Op::Reset(q) => {
                let x = crate::gate::Gate::X.matrix();
                for b in branches.iter_mut() {
                    if let Some(cond) = instr.condition {
                        if ((b.clbits >> cond.bit) & 1 == 1) != cond.value {
                            continue;
                        }
                    }
                    let mut r0 = b.rho.clone();
                    r0.project(*q, false);
                    let mut r1 = b.rho.clone();
                    r1.project(*q, true);
                    r1.apply_unitary(&x, &[*q]);
                    r0.axpy(1.0, &r1);
                    b.rho = r0;
                }
            }
            Op::Barrier => {}
        }
    }
    let n = circuit.num_qubits();
    let mut acc = DensityMatrix::from_matrix(n, Matrix::zeros(1 << n, 1 << n));
    for b in branches {
        acc.axpy(1.0, &b.rho);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::execute_density;
    use crate::gate::Gate;
    use crate::pauli::{Pauli, PauliString};

    #[test]
    fn kraus_operators_are_trace_preserving() {
        for ch in [
            NoiseChannel::Depolarizing(0.1),
            NoiseChannel::Dephasing(0.2),
            NoiseChannel::BitFlip(0.3),
            NoiseChannel::AmplitudeDamping(0.4),
        ] {
            let kraus = ch.kraus();
            let mut sum = Matrix::zeros(2, 2);
            for k in &kraus {
                sum = sum.add(&k.dagger().matmul(k));
            }
            assert!(sum.approx_eq(&Matrix::identity(2), 1e-12), "{ch:?} not TP");
        }
    }

    #[test]
    fn noiseless_model_matches_clean_executor() {
        let mut c = Circuit::new(2, 1);
        c.h(0).cx(0, 1).measure(0, 0).x_if(1, 0);
        let clean = execute_density(&c, &DensityMatrix::new(2));
        let noisy = execute_density_noisy(&c, &DensityMatrix::new(2), &NoiseModel::noiseless());
        assert!(clean.approx_eq(&noisy, 1e-12));
    }

    #[test]
    fn depolarising_shrinks_expectations() {
        // Ry(θ) then measure ⟨Z⟩: one gate → one depolarising channel:
        // ⟨Z⟩_noisy = (1 − 4p/3)·⟨Z⟩_clean... for depolarizing(p):
        // ρ → (1−p)ρ + p I/2 shrinks Bloch vector by (1 − 4p/3·...)
        // precisely factor (1 − 4p/3)? With Kraus weights p/3 per Pauli:
        // λ = 1 − 4p/3·... compute: X,Y,Z errors each p/3: ⟨Z⟩ factor
        // = 1 − 2·(p/3 + p/3) = 1 − 4p/3.
        let p = 0.09;
        let mut c = Circuit::new(1, 0);
        c.ry(0.8, 0);
        let noise = NoiseModel {
            after_gate: vec![NoiseChannel::Depolarizing(p)],
            before_measure: vec![],
        };
        let rho = execute_density_noisy(&c, &DensityMatrix::new(1), &noise);
        let z = rho.expval_pauli(&PauliString::single(1, 0, Pauli::Z));
        let expect = (1.0 - 4.0 * p / 3.0) * (0.8f64).cos();
        assert!((z - expect).abs() < 1e-10, "{z} vs {expect}");
    }

    #[test]
    fn dephasing_preserves_z_but_kills_x() {
        let p = 0.2;
        let noise = NoiseModel {
            after_gate: vec![NoiseChannel::Dephasing(p)],
            before_measure: vec![],
        };
        // ⟨Z⟩ after Ry is untouched by Z noise; ⟨X⟩ shrinks by (1−2p).
        let mut c = Circuit::new(1, 0);
        c.ry(0.8, 0);
        let rho = execute_density_noisy(&c, &DensityMatrix::new(1), &noise);
        let z = rho.expval_pauli(&PauliString::single(1, 0, Pauli::Z));
        assert!((z - (0.8f64).cos()).abs() < 1e-10);
        let x = rho.expval_pauli(&PauliString::single(1, 0, Pauli::X));
        assert!((x - (1.0 - 2.0 * p) * (0.8f64).sin()).abs() < 1e-10);
    }

    #[test]
    fn amplitude_damping_fixes_ground_state() {
        let noise = NoiseModel {
            after_gate: vec![NoiseChannel::AmplitudeDamping(0.3)],
            before_measure: vec![],
        };
        let mut c = Circuit::new(1, 0);
        c.gate(Gate::I, &[0]);
        let rho = execute_density_noisy(&c, &DensityMatrix::new(1), &noise);
        assert!(rho.approx_eq(&DensityMatrix::new(1), 1e-12));
        // Excited state decays: ⟨Z⟩ of X|0⟩ rises from −1 to −1 + 2γ.
        let mut c = Circuit::new(1, 0);
        c.x(0);
        let rho = execute_density_noisy(&c, &DensityMatrix::new(1), &noise);
        let z = rho.expval_pauli(&PauliString::single(1, 0, Pauli::Z));
        assert!((z - (-1.0 + 2.0 * 0.3)).abs() < 1e-10);
    }

    #[test]
    fn noise_commutes_with_measurement_branching() {
        // Trace stays 1 through a measured, feed-forward circuit.
        let mut c = Circuit::new(3, 2);
        c.ry(0.9, 0);
        c.h(1).cx(1, 2);
        c.cx(0, 1).h(0);
        c.measure(0, 0).measure(1, 1);
        c.x_if(2, 1).z_if(2, 0);
        let rho =
            execute_density_noisy(&c, &DensityMatrix::new(3), &NoiseModel::depolarizing(0.02));
        assert!((rho.trace() - 1.0).abs() < 1e-10);
        assert!(rho.is_physical(1e-8));
    }

    #[test]
    fn teleportation_under_noise_is_biased() {
        // Noisy teleportation of Ry(0.9)|0⟩: ⟨Z⟩ deviates from cos(0.9)
        // and the deviation grows with p.
        let exact = (0.9f64).cos();
        let mut prev_bias = 0.0;
        for &p in &[0.0, 0.01, 0.05] {
            let mut c = Circuit::new(3, 2);
            c.ry(0.9, 0);
            c.h(1).cx(1, 2);
            c.cx(0, 1).h(0);
            c.measure(0, 0).measure(1, 1);
            c.x_if(2, 1).z_if(2, 0);
            let rho =
                execute_density_noisy(&c, &DensityMatrix::new(3), &NoiseModel::depolarizing(p));
            let z = rho
                .partial_trace(&[2])
                .expval_pauli(&PauliString::single(1, 0, Pauli::Z));
            let bias = (z - exact).abs();
            assert!(bias >= prev_bias - 1e-12, "bias not increasing with p");
            prev_bias = bias;
        }
        assert!(prev_bias > 0.01, "noise had no effect: {prev_bias}");
    }
}

//! Pauli operators and Pauli strings.
//!
//! The paper's observable is `Z` (Section IV) and its error analysis is
//! phrased entirely in terms of Pauli errors introduced by NME
//! teleportation (Eq. 22, 55–59), so Paulis get first-class treatment.

use qlinalg::{c64, Matrix, C_I, C_ONE, C_ZERO};
use std::fmt;

/// Single-qubit Pauli operator.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Pauli {
    /// Identity.
    I,
    /// Pauli-X (bit flip).
    X,
    /// Pauli-Y.
    Y,
    /// Pauli-Z (phase flip).
    Z,
}

impl Pauli {
    /// All four Paulis in the conventional order `I, X, Y, Z`.
    pub const ALL: [Pauli; 4] = [Pauli::I, Pauli::X, Pauli::Y, Pauli::Z];

    /// The 2×2 matrix representation.
    pub fn matrix(self) -> Matrix {
        match self {
            Pauli::I => Matrix::identity(2),
            Pauli::X => Matrix::from_rows(&[vec![C_ZERO, C_ONE], vec![C_ONE, C_ZERO]]),
            Pauli::Y => Matrix::from_rows(&[vec![C_ZERO, -C_I], vec![C_I, C_ZERO]]),
            Pauli::Z => Matrix::from_rows(&[vec![C_ONE, C_ZERO], vec![C_ZERO, -C_ONE]]),
        }
    }

    /// Index in the `I, X, Y, Z` ordering.
    pub fn index(self) -> usize {
        match self {
            Pauli::I => 0,
            Pauli::X => 1,
            Pauli::Y => 2,
            Pauli::Z => 3,
        }
    }

    /// Inverse of [`Pauli::index`].
    pub fn from_index(i: usize) -> Pauli {
        Pauli::ALL[i]
    }

    /// Product `self · other` up to phase: returns `(phase, pauli)` with
    /// `self · other = phase · pauli`.
    #[allow(clippy::should_implement_trait)] // not Mul: returns a phase alongside
    pub fn mul(self, other: Pauli) -> (qlinalg::Complex64, Pauli) {
        use Pauli::*;
        match (self, other) {
            (I, p) | (p, I) => (C_ONE, p),
            (X, X) | (Y, Y) | (Z, Z) => (C_ONE, I),
            (X, Y) => (C_I, Z),
            (Y, X) => (-C_I, Z),
            (Y, Z) => (C_I, X),
            (Z, Y) => (-C_I, X),
            (Z, X) => (C_I, Y),
            (X, Z) => (-C_I, Y),
        }
    }

    /// `true` when the two Paulis commute.
    pub fn commutes_with(self, other: Pauli) -> bool {
        self == Pauli::I || other == Pauli::I || self == other
    }
}

impl fmt::Display for Pauli {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let c = match self {
            Pauli::I => 'I',
            Pauli::X => 'X',
            Pauli::Y => 'Y',
            Pauli::Z => 'Z',
        };
        write!(f, "{c}")
    }
}

/// A tensor product of single-qubit Paulis over `n` qubits.
///
/// `ops[k]` acts on qubit `k` (little-endian, qubit 0 = least significant
/// statevector bit).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PauliString {
    ops: Vec<Pauli>,
}

impl PauliString {
    /// All-identity string on `n` qubits.
    pub fn identity(n: usize) -> Self {
        Self {
            ops: vec![Pauli::I; n],
        }
    }

    /// Builds from an explicit per-qubit list (`ops[k]` acts on qubit `k`).
    pub fn new(ops: Vec<Pauli>) -> Self {
        Self { ops }
    }

    /// Single-qubit observable `P` on qubit `q` of an `n`-qubit register.
    pub fn single(n: usize, q: usize, p: Pauli) -> Self {
        assert!(q < n, "qubit index out of range");
        let mut ops = vec![Pauli::I; n];
        ops[q] = p;
        Self { ops }
    }

    /// Parses labels like `"ZIX"` — **leftmost character is the highest
    /// qubit**, matching ket notation `|q_{n-1}…q_0⟩`.
    pub fn from_label(label: &str) -> Self {
        let ops = label
            .chars()
            .rev()
            .map(|c| match c {
                'I' => Pauli::I,
                'X' => Pauli::X,
                'Y' => Pauli::Y,
                'Z' => Pauli::Z,
                other => panic!("invalid Pauli label character '{other}'"),
            })
            .collect();
        Self { ops }
    }

    /// Number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.ops.len()
    }

    /// The Pauli on qubit `q`.
    pub fn op(&self, q: usize) -> Pauli {
        self.ops[q]
    }

    /// Slice of per-qubit operators.
    pub fn ops(&self) -> &[Pauli] {
        &self.ops
    }

    /// Dense `2^n × 2^n` matrix (kron of factors, highest qubit first).
    pub fn matrix(&self) -> Matrix {
        let mut m = Matrix::identity(1);
        for p in self.ops.iter().rev() {
            m = m.kron(&p.matrix());
        }
        m
    }

    /// Weight: number of non-identity factors.
    pub fn weight(&self) -> usize {
        self.ops.iter().filter(|&&p| p != Pauli::I).count()
    }

    /// The eigenvalue `±1` of this Pauli string on computational basis
    /// state `index`, **valid only for diagonal strings** (I/Z factors).
    ///
    /// # Panics
    /// Panics if the string contains X or Y.
    pub fn diagonal_eigenvalue(&self, index: usize) -> f64 {
        let mut sign = 1.0;
        for (q, &p) in self.ops.iter().enumerate() {
            match p {
                Pauli::I => {}
                Pauli::Z => {
                    if (index >> q) & 1 == 1 {
                        sign = -sign;
                    }
                }
                _ => panic!("diagonal_eigenvalue on non-diagonal Pauli string"),
            }
        }
        sign
    }

    /// `true` when every factor is I or Z.
    pub fn is_diagonal(&self) -> bool {
        self.ops.iter().all(|&p| matches!(p, Pauli::I | Pauli::Z))
    }
}

impl fmt::Display for PauliString {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for p in self.ops.iter().rev() {
            write!(f, "{p}")?;
        }
        Ok(())
    }
}

/// Expands a density operator in the Pauli basis: returns the real
/// coefficients `r_P = Tr[P·ρ] / 2^n` for all `4^n` Pauli strings of `n`
/// qubits, ordered by base-4 digits (qubit 0 = least significant digit,
/// digit order I,X,Y,Z).
pub fn pauli_coefficients(rho: &Matrix, n: usize) -> Vec<f64> {
    let total = 4usize.pow(n as u32);
    let dim = 1usize << n;
    assert_eq!(rho.rows(), dim);
    let norm = 1.0 / dim as f64;
    let mut out = Vec::with_capacity(total);
    for code in 0..total {
        let ps = pauli_string_from_code(code, n);
        let m = ps.matrix();
        let tr = m.matmul(rho).trace();
        out.push(tr.re * norm);
    }
    out
}

/// Decodes a base-4 code into a Pauli string (digit `k` = Pauli on qubit `k`).
pub fn pauli_string_from_code(code: usize, n: usize) -> PauliString {
    let mut ops = Vec::with_capacity(n);
    let mut c = code;
    for _ in 0..n {
        ops.push(Pauli::from_index(c & 3));
        c >>= 2;
    }
    PauliString::new(ops)
}

/// Reconstructs a density operator from its Pauli coefficients
/// (inverse of [`pauli_coefficients`]).
pub fn density_from_pauli_coefficients(coeffs: &[f64], n: usize) -> Matrix {
    let dim = 1usize << n;
    let mut rho = Matrix::zeros(dim, dim);
    for (code, &r) in coeffs.iter().enumerate() {
        let m = pauli_string_from_code(code, n).matrix();
        rho.axpy(c64(r, 0.0), &m);
    }
    rho
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pauli_products_follow_algebra() {
        let (ph, p) = Pauli::X.mul(Pauli::Y);
        assert_eq!(p, Pauli::Z);
        assert!(ph.approx_eq(C_I, 1e-14));
        let (ph, p) = Pauli::Y.mul(Pauli::X);
        assert_eq!(p, Pauli::Z);
        assert!(ph.approx_eq(-C_I, 1e-14));
        let (ph, p) = Pauli::Z.mul(Pauli::Z);
        assert_eq!(p, Pauli::I);
        assert!(ph.approx_eq(C_ONE, 1e-14));
    }

    #[test]
    fn product_matches_matrix_product() {
        for a in Pauli::ALL {
            for b in Pauli::ALL {
                let (phase, c) = a.mul(b);
                let lhs = a.matrix().matmul(&b.matrix());
                let rhs = c.matrix().scale(phase);
                assert!(lhs.approx_eq(&rhs, 1e-14), "{a}·{b} != {phase:?}{c}");
            }
        }
    }

    #[test]
    fn commutation_structure() {
        assert!(Pauli::X.commutes_with(Pauli::X));
        assert!(Pauli::X.commutes_with(Pauli::I));
        assert!(!Pauli::X.commutes_with(Pauli::Z));
        assert!(!Pauli::Y.commutes_with(Pauli::Z));
    }

    #[test]
    fn label_round_trip_is_little_endian() {
        let ps = PauliString::from_label("ZX");
        // leftmost 'Z' is qubit 1, rightmost 'X' is qubit 0
        assert_eq!(ps.op(0), Pauli::X);
        assert_eq!(ps.op(1), Pauli::Z);
        assert_eq!(format!("{ps}"), "ZX");
    }

    #[test]
    fn string_matrix_matches_kron() {
        let ps = PauliString::from_label("XZ");
        let expect = Pauli::X.matrix().kron(&Pauli::Z.matrix());
        assert!(ps.matrix().approx_eq(&expect, 1e-14));
    }

    #[test]
    fn diagonal_eigenvalues_of_zz() {
        let zz = PauliString::from_label("ZZ");
        assert_eq!(zz.diagonal_eigenvalue(0b00), 1.0);
        assert_eq!(zz.diagonal_eigenvalue(0b01), -1.0);
        assert_eq!(zz.diagonal_eigenvalue(0b10), -1.0);
        assert_eq!(zz.diagonal_eigenvalue(0b11), 1.0);
    }

    #[test]
    fn weight_counts_non_identity() {
        assert_eq!(PauliString::from_label("IXI").weight(), 1);
        assert_eq!(PauliString::from_label("ZZY").weight(), 3);
        assert_eq!(PauliString::identity(4).weight(), 0);
    }

    #[test]
    fn pauli_coefficient_round_trip() {
        // ρ = |+⟩⟨+| on 1 qubit: coefficients r_I = 1/2, r_X = 1/2.
        let half = c64(0.5, 0.0);
        let rho = Matrix::from_rows(&[vec![half, half], vec![half, half]]);
        let coeffs = pauli_coefficients(&rho, 1);
        assert!((coeffs[0] - 0.5).abs() < 1e-12); // I
        assert!((coeffs[1] - 0.5).abs() < 1e-12); // X
        assert!(coeffs[2].abs() < 1e-12); // Y
        assert!(coeffs[3].abs() < 1e-12); // Z
        let back = density_from_pauli_coefficients(&coeffs, 1);
        assert!(back.approx_eq(&rho, 1e-12));
    }

    #[test]
    fn single_places_operator_correctly() {
        let ps = PauliString::single(3, 1, Pauli::Z);
        assert_eq!(ps.op(0), Pauli::I);
        assert_eq!(ps.op(1), Pauli::Z);
        assert_eq!(ps.op(2), Pauli::I);
    }
}

//! Haar-random unitaries and states.
//!
//! Implements exactly the workload generator of the paper's experiment
//! (Section IV): "A unitary matrix W is randomly sampled \[30\] and applied
//! to the initial state |0⟩", with \[30\] = Mezzadri's QR-of-Ginibre recipe.
//! Gaussian variates come from a Box–Muller transform so no distribution
//! crate is needed.

use crate::statevector::StateVector;
use qlinalg::{c64, Complex64, Matrix};
use rand::Rng;

/// Draws a standard normal variate via the Box–Muller transform.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Avoid ln(0) by sampling u1 from (0, 1].
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Samples a complex Ginibre matrix: i.i.d. entries `(N(0,1) + i·N(0,1))/√2`.
pub fn ginibre<R: Rng + ?Sized>(n: usize, rng: &mut R) -> Matrix {
    let s = std::f64::consts::FRAC_1_SQRT_2;
    Matrix::from_fn(n, n, |_, _| {
        c64(standard_normal(rng) * s, standard_normal(rng) * s)
    })
}

/// Samples a Haar-distributed unitary on `U(n)` (Mezzadri 2007): QR-factor
/// a Ginibre matrix and absorb the phases of `diag(R)` into `Q`.
pub fn haar_unitary<R: Rng + ?Sized>(n: usize, rng: &mut R) -> Matrix {
    let g = ginibre(n, rng);
    qlinalg::qr(&g).haar_unitary_q()
}

/// Samples a Haar-random pure state of `num_qubits` qubits: `W|0…0⟩` for
/// Haar-random `W` (equivalently a random unit vector).
pub fn haar_state<R: Rng + ?Sized>(num_qubits: usize, rng: &mut R) -> StateVector {
    let dim = 1usize << num_qubits;
    // The first column of a Haar unitary is a Haar-random unit vector; we
    // can sample it directly as a normalised Gaussian vector, which is
    // cheaper than a full QR for larger registers.
    let s = std::f64::consts::FRAC_1_SQRT_2;
    let amps: Vec<Complex64> = (0..dim)
        .map(|_| c64(standard_normal(rng) * s, standard_normal(rng) * s))
        .collect();
    StateVector::from_amplitudes_normalised(num_qubits, amps)
}

/// Samples a random unitary circuit for planner/end-to-end workloads:
/// `gates` instructions, each either a Haar-random single-qubit unitary
/// on a random wire or (when `num_qubits ≥ 2`, with probability 1/2) a
/// Haar-random two-qubit unitary on a random distinct pair. Purely
/// unitary by construction (no measurement/reset/conditions), so the
/// uncut statevector expectation is exactly computable, and every draw
/// is fully determined by the `rng` stream.
pub fn random_unitary_circuit<R: Rng + ?Sized>(
    num_qubits: usize,
    gates: usize,
    rng: &mut R,
) -> crate::circuit::Circuit {
    assert!(num_qubits >= 1, "need at least one qubit");
    let mut c = crate::circuit::Circuit::new(num_qubits, 0);
    for _ in 0..gates {
        let two = num_qubits >= 2 && rng.gen::<f64>() < 0.5;
        if two {
            let a = rng.gen_range(0..num_qubits);
            let mut b = rng.gen_range(0..num_qubits - 1);
            if b >= a {
                b += 1;
            }
            c.unitary(haar_unitary(4, rng), &[a, b]);
        } else {
            let q = rng.gen_range(0..num_qubits);
            c.unitary(haar_unitary(2, rng), &[q]);
        }
    }
    c
}

/// Samples a Haar-random single-qubit unitary `W` and returns it together
/// with the exact `⟨Z⟩` of `W|0⟩` — the paper's per-instance workload
/// (`⟨Z⟩_{W|0⟩} = ⟨0|W†ZW|0⟩`).
pub fn haar_single_qubit_workload<R: Rng + ?Sized>(rng: &mut R) -> (Matrix, f64) {
    let w = haar_unitary(2, rng);
    // ⟨Z⟩ = |W00|² − |W10|²  (the first column is W|0⟩).
    let z = w[(0, 0)].norm_sqr() - w[(1, 0)].norm_sqr();
    (w, z)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn normal_moments() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 200_000;
        let xs: Vec<f64> = (0..n).map(|_| standard_normal(&mut rng)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!((var - 1.0).abs() < 0.02, "var {var}");
    }

    #[test]
    fn haar_unitary_is_unitary() {
        let mut rng = StdRng::seed_from_u64(2);
        for n in [2, 3, 4] {
            let u = haar_unitary(n, &mut rng);
            assert!(u.is_unitary(1e-9), "not unitary for n={n}");
        }
    }

    #[test]
    fn haar_state_is_normalised() {
        let mut rng = StdRng::seed_from_u64(3);
        for n in 1..=4 {
            let sv = haar_state(n, &mut rng);
            assert!((sv.norm() - 1.0).abs() < 1e-10);
        }
    }

    #[test]
    fn haar_single_qubit_z_is_uniform_on_minus_one_one() {
        // For Haar-random single-qubit states, ⟨Z⟩ is uniform on [−1, 1]:
        // E[⟨Z⟩] = 0 and Var[⟨Z⟩] = 1/3.
        let mut rng = StdRng::seed_from_u64(4);
        let n = 20_000;
        let zs: Vec<f64> = (0..n)
            .map(|_| haar_single_qubit_workload(&mut rng).1)
            .collect();
        let mean = zs.iter().sum::<f64>() / n as f64;
        let var = zs.iter().map(|z| (z - mean) * (z - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0 / 3.0).abs() < 0.02, "var {var}");
        assert!(zs.iter().all(|z| (-1.0..=1.0).contains(z)));
    }

    #[test]
    fn haar_unitary_first_column_matches_workload_z() {
        let mut rng = StdRng::seed_from_u64(5);
        let (w, z) = haar_single_qubit_workload(&mut rng);
        let mut sv = StateVector::new(1);
        sv.apply_matrix1(&w, 0);
        assert!((sv.expval_z(0) - z).abs() < 1e-12);
    }

    #[test]
    fn random_unitary_circuit_is_unitary_and_deterministic() {
        let mut rng = StdRng::seed_from_u64(7);
        let c = random_unitary_circuit(4, 12, &mut rng);
        assert_eq!(c.len(), 12);
        assert!(c.is_unitary());
        assert_eq!(c.num_qubits(), 4);
        // Same seed ⇒ byte-identical instruction stream.
        let mut rng = StdRng::seed_from_u64(7);
        let again = random_unitary_circuit(4, 12, &mut rng);
        assert_eq!(c, again);
    }

    #[test]
    fn single_qubit_random_circuit_avoids_two_qubit_gates() {
        let mut rng = StdRng::seed_from_u64(8);
        let c = random_unitary_circuit(1, 6, &mut rng);
        assert_eq!(c.len(), 6);
        assert!(c.is_unitary());
    }

    #[test]
    fn haar_column_phases_are_uniform() {
        // Weak distributional check distinguishing corrected from raw QR:
        // entries of the first column should have uniformly distributed
        // phases; raw QR biases the diagonal phase.
        let mut rng = StdRng::seed_from_u64(6);
        let n = 4000;
        let mut sum_cos = 0.0;
        for _ in 0..n {
            let u = haar_unitary(2, &mut rng);
            sum_cos += u[(0, 0)].arg().cos();
        }
        assert!(
            (sum_cos / n as f64).abs() < 0.05,
            "first-entry phase biased: {}",
            sum_cos / n as f64
        );
    }
}

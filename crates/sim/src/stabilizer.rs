//! Stabilizer-tableau (Clifford) fast path.
//!
//! Most of the circuitry the cut pipeline executes — Bell/`|Φ_k⟩`
//! preparation, MUB basis rotations, the entire DEJMPS/BBPSSW
//! distillation layer, teleportation feed-forward — is Clifford, exactly
//! the class a phase-tracked tableau simulates in `O(n²)` per gate
//! instead of the dense backend's `O(2^n)` (Aaronson & Gottesman,
//! quant-ph/0406196). This module provides:
//!
//! * [`Tableau`] — the simulator: `2n` phase-tracked X/Z generator rows
//!   (destabilizers then stabilizers), update rules for every fixed
//!   Clifford gate in the [`Gate`] library, deterministic **and** random
//!   Z-basis measurement with forced-outcome collapse, reset, and full
//!   circuit execution with classical feed-forward.
//! * [`Tableau::to_statevector`] — exact conversion to the dense
//!   backend: solve the stabilizer group for a support basis state, then
//!   apply the group projector `Π (I + Sᵢ)/2`. The dense state is seeded
//!   from the tableau **only** when a non-Clifford gate or an amplitude
//!   query forces it (see [`crate::executor::CompiledSampler::compile`]).
//! * [`CliffordPrefix`] / [`clifford_prefix_len`] — splits any
//!   [`Circuit`] into its maximal leading Clifford run and the dense
//!   suffix the statevector backend must finish.
//!
//! Conventions: row `(x, z, r)` represents the Hermitian Pauli
//! `(−1)^r · Πⱼ σⱼ` with `σⱼ ∈ {I, X, Y, Z}` selected by the `(xⱼ, zⱼ)`
//! bit pair (`(1,1)` is `Y`). Qubit `q` is bit `q` of the row masks,
//! matching the little-endian statevector layout.

use crate::circuit::{Circuit, Op};
use crate::gate::Gate;
use crate::statevector::StateVector;
use qlinalg::{c64, Complex64, C_ZERO};
use rand::Rng;

/// `true` for gates the tableau can apply by type: the fixed Clifford
/// subset of the gate library. Parameterised rotations (`Rz(π/2)` etc.)
/// and matrix-valued gates are conservatively classified dense even when
/// their matrix happens to be Clifford.
pub fn is_clifford_gate(g: &Gate) -> bool {
    matches!(
        g,
        Gate::I
            | Gate::X
            | Gate::Y
            | Gate::Z
            | Gate::H
            | Gate::S
            | Gate::Sdg
            | Gate::SX
            | Gate::CX
            | Gate::CZ
            | Gate::CY
            | Gate::Swap
    )
}

/// Length of the maximal leading instruction run of `circuit` that a
/// [`Tableau`] can execute: Clifford gates (conditioned or not),
/// measurements, resets and barriers. Returns 0 when the register is too
/// wide for the tableau's bit masks.
pub fn clifford_prefix_len(circuit: &Circuit) -> usize {
    if circuit.num_qubits() > Tableau::MAX_QUBITS || circuit.num_clbits() > 64 {
        return 0;
    }
    circuit
        .instructions()
        .iter()
        .take_while(|instr| match &instr.op {
            Op::Gate(g, _) => is_clifford_gate(g),
            Op::Measure { .. } | Op::Reset(_) | Op::Barrier => true,
        })
        .count()
}

/// The Clifford-prefix/dense-suffix split of a circuit: instructions
/// `[0, prefix_len)` ride the tableau, the rest ride the dense backend.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CliffordPrefix {
    /// Number of leading instructions executable on the tableau.
    pub prefix_len: usize,
    /// Total instruction count of the analysed circuit.
    pub total: usize,
}

impl CliffordPrefix {
    /// Analyses `circuit`.
    pub fn split(circuit: &Circuit) -> Self {
        Self {
            prefix_len: clifford_prefix_len(circuit),
            total: circuit.len(),
        }
    }

    /// `true` when the whole circuit is Clifford (rides the tableau end
    /// to end; the dense backend is only touched for final amplitudes).
    pub fn is_full(&self) -> bool {
        self.prefix_len == self.total
    }

    /// Fraction of instructions on the fast path (1.0 for an empty
    /// circuit, which is trivially all-Clifford).
    pub fn fraction(&self) -> f64 {
        if self.total == 0 {
            1.0
        } else {
            self.prefix_len as f64 / self.total as f64
        }
    }
}

/// Phase-tracked stabilizer tableau over `n ≤ 64` qubits.
///
/// Rows `0..n` are destabilizers, rows `n..2n` stabilizers; the state is
/// the unique (up to global phase) joint `+1` eigenstate of the
/// stabilizer rows. Gate updates are `O(n)` bit operations, measurement
/// `O(n²)`.
#[derive(Clone, Debug, PartialEq)]
pub struct Tableau {
    n: usize,
    /// X bit masks, one `u64` per row (bit `q` = qubit `q`).
    x: Vec<u64>,
    /// Z bit masks.
    z: Vec<u64>,
    /// Phase bits (`true` = −1).
    r: Vec<bool>,
}

impl Tableau {
    /// Widest register the single-word row masks support.
    pub const MAX_QUBITS: usize = 64;

    /// The all-zeros state `|0…0⟩`: destabilizer `i` = `Xᵢ`, stabilizer
    /// `i` = `Zᵢ`.
    pub fn new(n: usize) -> Self {
        assert!(n <= Self::MAX_QUBITS, "tableau too wide");
        let mut x = vec![0u64; 2 * n];
        let mut z = vec![0u64; 2 * n];
        for i in 0..n {
            x[i] = 1 << i;
            z[n + i] = 1 << i;
        }
        Self {
            n,
            x,
            z,
            r: vec![false; 2 * n],
        }
    }

    /// Number of qubits.
    #[inline]
    pub fn num_qubits(&self) -> usize {
        self.n
    }

    // ----------------------------------------------------------------
    // Gate updates (conjugation of every row by the gate unitary)
    // ----------------------------------------------------------------

    /// Applies a Clifford gate.
    ///
    /// # Panics
    /// Panics when [`is_clifford_gate`] is false for `g`.
    pub fn apply_gate(&mut self, g: &Gate, qubits: &[usize]) {
        debug_assert_eq!(g.arity(), qubits.len());
        match g {
            Gate::I => {}
            Gate::X => self.apply_x(qubits[0]),
            Gate::Y => self.apply_y(qubits[0]),
            Gate::Z => self.apply_z(qubits[0]),
            Gate::H => self.apply_h(qubits[0]),
            Gate::S => self.apply_s(qubits[0]),
            Gate::Sdg => self.apply_sdg(qubits[0]),
            Gate::SX => self.apply_sx(qubits[0]),
            Gate::CX => self.apply_cx(qubits[0], qubits[1]),
            Gate::CZ => self.apply_cz(qubits[0], qubits[1]),
            Gate::CY => {
                // CY = S_b · CX · S_b†: conjugate rows right-to-left.
                self.apply_sdg(qubits[1]);
                self.apply_cx(qubits[0], qubits[1]);
                self.apply_s(qubits[1]);
            }
            Gate::Swap => self.apply_swap(qubits[0], qubits[1]),
            other => panic!("non-Clifford gate {other} on tableau"),
        }
    }

    /// Hadamard: `X ↔ Z`, `Y → −Y`.
    pub fn apply_h(&mut self, q: usize) {
        let bit = 1u64 << q;
        for i in 0..2 * self.n {
            let xq = self.x[i] & bit;
            let zq = self.z[i] & bit;
            self.r[i] ^= xq != 0 && zq != 0;
            if (xq != 0) != (zq != 0) {
                self.x[i] ^= bit;
                self.z[i] ^= bit;
            }
        }
    }

    /// Phase gate: `X → Y`, `Y → −X`.
    pub fn apply_s(&mut self, q: usize) {
        let bit = 1u64 << q;
        for i in 0..2 * self.n {
            self.r[i] ^= self.x[i] & self.z[i] & bit != 0;
            self.z[i] ^= self.x[i] & bit;
        }
    }

    /// Inverse phase gate: `X → −Y`, `Y → X`.
    pub fn apply_sdg(&mut self, q: usize) {
        let bit = 1u64 << q;
        for i in 0..2 * self.n {
            self.r[i] ^= self.x[i] & !self.z[i] & bit != 0;
            self.z[i] ^= self.x[i] & bit;
        }
    }

    /// `√X`: `Z → −Y`, `Y → Z`.
    pub fn apply_sx(&mut self, q: usize) {
        let bit = 1u64 << q;
        for i in 0..2 * self.n {
            self.r[i] ^= self.z[i] & !self.x[i] & bit != 0;
            self.x[i] ^= self.z[i] & bit;
        }
    }

    /// Pauli-X: `Z → −Z`, `Y → −Y`.
    pub fn apply_x(&mut self, q: usize) {
        let bit = 1u64 << q;
        for i in 0..2 * self.n {
            self.r[i] ^= self.z[i] & bit != 0;
        }
    }

    /// Pauli-Y: `X → −X`, `Z → −Z`.
    pub fn apply_y(&mut self, q: usize) {
        let bit = 1u64 << q;
        for i in 0..2 * self.n {
            self.r[i] ^= (self.x[i] ^ self.z[i]) & bit != 0;
        }
    }

    /// Pauli-Z: `X → −X`, `Y → −Y`.
    pub fn apply_z(&mut self, q: usize) {
        let bit = 1u64 << q;
        for i in 0..2 * self.n {
            self.r[i] ^= self.x[i] & bit != 0;
        }
    }

    /// CNOT with control `a`, target `b`.
    pub fn apply_cx(&mut self, a: usize, b: usize) {
        debug_assert_ne!(a, b);
        let (ba, bb) = (1u64 << a, 1u64 << b);
        for i in 0..2 * self.n {
            let xa = self.x[i] & ba != 0;
            let za = self.z[i] & ba != 0;
            let xb = self.x[i] & bb != 0;
            let zb = self.z[i] & bb != 0;
            self.r[i] ^= xa && zb && (xb == za);
            if xa {
                self.x[i] ^= bb;
            }
            if zb {
                self.z[i] ^= ba;
            }
        }
    }

    /// Controlled-Z (symmetric).
    pub fn apply_cz(&mut self, a: usize, b: usize) {
        debug_assert_ne!(a, b);
        let (ba, bb) = (1u64 << a, 1u64 << b);
        for i in 0..2 * self.n {
            let xa = self.x[i] & ba != 0;
            let za = self.z[i] & ba != 0;
            let xb = self.x[i] & bb != 0;
            let zb = self.z[i] & bb != 0;
            self.r[i] ^= xa && xb && (za != zb);
            if xb {
                self.z[i] ^= ba;
            }
            if xa {
                self.z[i] ^= bb;
            }
        }
    }

    /// SWAP of `a` and `b`.
    pub fn apply_swap(&mut self, a: usize, b: usize) {
        debug_assert_ne!(a, b);
        let (ba, bb) = (1u64 << a, 1u64 << b);
        for i in 0..2 * self.n {
            let xa = self.x[i] & ba != 0;
            let xb = self.x[i] & bb != 0;
            if xa != xb {
                self.x[i] ^= ba | bb;
            }
            let za = self.z[i] & ba != 0;
            let zb = self.z[i] & bb != 0;
            if za != zb {
                self.z[i] ^= ba | bb;
            }
        }
    }

    // ----------------------------------------------------------------
    // Row algebra
    // ----------------------------------------------------------------

    /// Exponent of `i` picked up multiplying single-qubit Paulis
    /// `(x1,z1)·(x2,z2)` (Aaronson–Gottesman `g`).
    #[inline]
    fn g(x1: bool, z1: bool, x2: bool, z2: bool) -> i32 {
        match (x1, z1) {
            (false, false) => 0,
            (true, true) => (z2 as i32) - (x2 as i32),
            (true, false) => (z2 as i32) * (2 * (x2 as i32) - 1),
            (false, true) => (x2 as i32) * (1 - 2 * (z2 as i32)),
        }
    }

    /// Exponent of `i` (mod 4) of the product `row1 · row2`.
    fn phase_exponent(n: usize, x1: u64, z1: u64, r1: bool, x2: u64, z2: u64, r2: bool) -> i32 {
        let mut sum = 2 * (r1 as i32) + 2 * (r2 as i32);
        for q in 0..n {
            sum += Self::g(
                x1 >> q & 1 == 1,
                z1 >> q & 1 == 1,
                x2 >> q & 1 == 1,
                z2 >> q & 1 == 1,
            );
        }
        sum.rem_euclid(4)
    }

    /// Phase bit of the product `row1 · row2` of two **commuting**
    /// Hermitian Pauli rows (the product is then Hermitian itself).
    fn product_phase(n: usize, x1: u64, z1: u64, r1: bool, x2: u64, z2: u64, r2: bool) -> bool {
        let m = Self::phase_exponent(n, x1, z1, r1, x2, z2, r2);
        debug_assert!(m == 0 || m == 2, "non-Hermitian row product (i^{m})");
        m == 2
    }

    /// `row_h := row_i · row_h` (the CHP `rowsum`). Destabilizer products
    /// may pick up an `±i` (their phases are never read back); the phase
    /// bit then records the sign half of the exponent only.
    fn rowsum(&mut self, h: usize, i: usize) {
        let m = Self::phase_exponent(
            self.n, self.x[i], self.z[i], self.r[i], self.x[h], self.z[h], self.r[h],
        );
        debug_assert!(h < self.n || m == 0 || m == 2, "non-Hermitian stabilizer");
        self.r[h] = m >= 2;
        self.x[h] ^= self.x[i];
        self.z[h] ^= self.z[i];
    }

    // ----------------------------------------------------------------
    // Measurement
    // ----------------------------------------------------------------

    /// Index of a stabilizer row anticommuting with `Z_q`, if any — the
    /// marker of a random measurement outcome.
    fn anticommuting_stabilizer(&self, q: usize) -> Option<usize> {
        let bit = 1u64 << q;
        (self.n..2 * self.n).find(|&i| self.x[i] & bit != 0)
    }

    /// The outcome of measuring qubit `q` when it is deterministic, or
    /// `None` when the outcome is uniformly random.
    pub fn deterministic_outcome(&self, q: usize) -> Option<bool> {
        if self.anticommuting_stabilizer(q).is_some() {
            return None;
        }
        // Accumulate the product of stabilizers whose destabilizer
        // partner anticommutes with Z_q; its phase is the outcome.
        let bit = 1u64 << q;
        let (mut sx, mut sz, mut sr) = (0u64, 0u64, false);
        for i in 0..self.n {
            if self.x[i] & bit != 0 {
                sr = Self::product_phase(
                    self.n,
                    self.x[self.n + i],
                    self.z[self.n + i],
                    self.r[self.n + i],
                    sx,
                    sz,
                    sr,
                );
                sx ^= self.x[self.n + i];
                sz ^= self.z[self.n + i];
            }
        }
        debug_assert_eq!(sx, 0, "accumulated outcome operator not Z-type");
        Some(sr)
    }

    /// Probability that measuring qubit `q` yields 1 — always exactly
    /// `0.0`, `0.5` or `1.0` for a stabilizer state.
    pub fn prob_one(&self, q: usize) -> f64 {
        match self.deterministic_outcome(q) {
            None => 0.5,
            Some(true) => 1.0,
            Some(false) => 0.0,
        }
    }

    /// Projects qubit `q` onto `outcome`, returning the probability of
    /// that outcome (`0.5` for random, `1.0` for a consistent
    /// deterministic outcome, `0.0` — state unchanged — otherwise).
    pub fn collapse(&mut self, q: usize, outcome: bool) -> f64 {
        match self.anticommuting_stabilizer(q) {
            Some(p) => {
                let bit = 1u64 << q;
                for i in 0..2 * self.n {
                    if i != p && self.x[i] & bit != 0 {
                        self.rowsum(i, p);
                    }
                }
                // The old stabilizer becomes the new destabilizer; the
                // stabilizer row becomes ±Z_q with the forced outcome.
                self.x[p - self.n] = self.x[p];
                self.z[p - self.n] = self.z[p];
                self.r[p - self.n] = self.r[p];
                self.x[p] = 0;
                self.z[p] = bit;
                self.r[p] = outcome;
                0.5
            }
            None => {
                let det = self
                    .deterministic_outcome(q)
                    .expect("no anticommuting stabilizer implies determinism");
                if det == outcome {
                    1.0
                } else {
                    0.0
                }
            }
        }
    }

    /// Measures qubit `q` in the Z basis, collapsing the state. Draws
    /// exactly one variate per call (like the dense backend) so hybrid
    /// and dense shot loops consume RNG streams identically.
    pub fn measure<R: Rng + ?Sized>(&mut self, q: usize, rng: &mut R) -> bool {
        let p1 = self.prob_one(q);
        let outcome = rng.gen::<f64>() < p1;
        self.collapse(q, outcome);
        outcome
    }

    /// Resets qubit `q` to `|0⟩` (measure, then flip if 1).
    pub fn reset<R: Rng + ?Sized>(&mut self, q: usize, rng: &mut R) {
        if self.measure(q, rng) {
            self.apply_x(q);
        }
    }

    /// Executes a fully-Clifford circuit shot (gates, measurement,
    /// reset, feed-forward), returning the classical register.
    ///
    /// # Panics
    /// Panics on a non-Clifford gate; gate the call with
    /// [`clifford_prefix_len`].
    pub fn run<R: Rng + ?Sized>(&mut self, circuit: &Circuit, rng: &mut R) -> u64 {
        assert_eq!(circuit.num_qubits(), self.n, "qubit count mismatch");
        assert!(circuit.num_clbits() <= 64, "at most 64 classical bits");
        let mut clbits = 0u64;
        for instr in circuit.instructions() {
            if let Some(cond) = instr.condition {
                if ((clbits >> cond.bit) & 1 == 1) != cond.value {
                    continue;
                }
            }
            match &instr.op {
                Op::Gate(g, qs) => self.apply_gate(g, qs),
                Op::Measure { qubit, clbit } => {
                    if self.measure(*qubit, rng) {
                        clbits |= 1 << clbit;
                    } else {
                        clbits &= !(1 << clbit);
                    }
                }
                Op::Reset(q) => self.reset(*q, rng),
                Op::Barrier => {}
            }
        }
        clbits
    }

    // ----------------------------------------------------------------
    // Dense seeding
    // ----------------------------------------------------------------

    /// The exact dense statevector stabilized by this tableau, with the
    /// deterministic phase convention that the lexicographically-solved
    /// support basis state carries a positive real amplitude. (The
    /// tableau does not track global phase, so hybrid and all-dense runs
    /// of the same circuit may differ by a physically-irrelevant global
    /// phase per measurement branch.)
    ///
    /// Cost `O(2^k + n³)` where `2^k ≤ 2^n` is the support size — one
    /// O(1) amplitude write per stabilizer-group element with X-support,
    /// enumerated in Gray-code order — versus `O(gates · 2^n)` for
    /// replaying the Clifford prefix densely.
    pub fn to_statevector(&self) -> StateVector {
        let n = self.n;
        assert!(n <= 30, "statevector too large");
        // 1. Row-reduce a copy of the stabilizer rows over their X parts
        //    (phase-tracked products keep every row in the group).
        let mut xs: Vec<u64> = self.x[n..].to_vec();
        let mut zs: Vec<u64> = self.z[n..].to_vec();
        let mut rs: Vec<bool> = self.r[n..].to_vec();
        let mut pivot = 0usize;
        for q in 0..n {
            let bit = 1u64 << q;
            if let Some(row) = (pivot..n).find(|&i| xs[i] & bit != 0) {
                xs.swap(pivot, row);
                zs.swap(pivot, row);
                rs.swap(pivot, row);
                for i in 0..n {
                    if i != pivot && xs[i] & bit != 0 {
                        rs[i] = Self::product_phase(
                            n, xs[pivot], zs[pivot], rs[pivot], xs[i], zs[i], rs[i],
                        );
                        xs[i] ^= xs[pivot];
                        zs[i] ^= zs[pivot];
                    }
                }
                pivot += 1;
            }
        }
        // 2. Rows pivot..n are Z-type: each demands (−1)^{z·b} = (−1)^r
        //    of a support basis state b. Solve the GF(2) system.
        let mut cons: Vec<(u64, bool)> = (pivot..n).map(|i| (zs[i], rs[i])).collect();
        let mut lead: Vec<(usize, usize)> = Vec::new(); // (row, col)
        let mut row = 0usize;
        for col in 0..n {
            let bit = 1u64 << col;
            if let Some(r2) = (row..cons.len()).find(|&i| cons[i].0 & bit != 0) {
                cons.swap(row, r2);
                for i in 0..cons.len() {
                    if i != row && cons[i].0 & bit != 0 {
                        cons[i].0 ^= cons[row].0;
                        cons[i].1 ^= cons[row].1;
                    }
                }
                lead.push((row, col));
                row += 1;
            }
        }
        debug_assert!(
            cons.iter().all(|&(z, r)| z != 0 || !r),
            "inconsistent stabilizer constraints"
        );
        let mut support = 0usize;
        for &(ri, col) in &lead {
            if cons[ri].1 {
                support |= 1 << col;
            }
        }
        // 3. ψ ∝ Σ_{g ∈ ⟨rows 0..pivot⟩} g|support⟩: the Z-only rows fix
        //    |support⟩, so only the 2^pivot products of X-type generators
        //    contribute — each one distinct basis state (X-parts are
        //    linearly independent). Enumerate them in Gray-code order,
        //    extending the running Pauli product by one generator per
        //    step; all amplitudes share magnitude 2^{-pivot/2}, so the
        //    state is normalised by construction.
        let k = pivot;
        let dim = 1usize << n;
        let mut amps = vec![C_ZERO; dim];
        let amp = 1.0 / ((1u64 << k) as f64).sqrt();
        amps[support] = c64(amp, 0.0);
        let (mut px, mut pz, mut pr) = (0u64, 0u64, false);
        let mut gray = 0u64;
        for m in 1..(1u64 << k) {
            let g = m ^ (m >> 1);
            let flip = (gray ^ g).trailing_zeros() as usize;
            gray = g;
            // The group is abelian, so the multiplication order does not
            // affect the product phase; Hermiticity of group elements
            // keeps the i-exponent even.
            let mexp = Self::phase_exponent(n, xs[flip], zs[flip], rs[flip], px, pz, pr);
            debug_assert!(mexp % 2 == 0, "non-Hermitian stabilizer product");
            px ^= xs[flip];
            pz ^= zs[flip];
            pr = mexp >= 2;
            let mut phase = pauli_base_phase(px, pz, pr);
            if ((pz as usize) & support).count_ones() & 1 == 1 {
                phase = -phase;
            }
            amps[support ^ (px as usize)] = phase.scale(amp);
        }
        StateVector::from_amplitudes(n, amps)
    }
}

/// Basis-state-independent phase factor `(−1)^r · i^{|x∧z|}` of the
/// Hermitian Pauli row `(x, z, r)`; the `(−1)^{z·b}` part is applied per
/// basis state.
fn pauli_base_phase(x: u64, z: u64, r: bool) -> Complex64 {
    let mut phase = match (x & z).count_ones() % 4 {
        0 => c64(1.0, 0.0),
        1 => c64(0.0, 1.0),
        2 => c64(-1.0, 0.0),
        _ => c64(0.0, -1.0),
    };
    if r {
        phase = -phase;
    }
    phase
}

#[cfg(test)]
mod tests {
    use super::*;
    use qlinalg::vector;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// |⟨a|b⟩| — 1, i.e. equality up to the untracked global phase.
    fn fidelity_gap(a: &StateVector, b: &StateVector) -> f64 {
        (vector::inner(a.amplitudes(), b.amplitudes()).abs() - 1.0).abs()
    }

    const CLIFFORD_1Q: [Gate; 8] = [
        Gate::I,
        Gate::X,
        Gate::Y,
        Gate::Z,
        Gate::H,
        Gate::S,
        Gate::Sdg,
        Gate::SX,
    ];
    const CLIFFORD_2Q: [Gate; 4] = [Gate::CX, Gate::CZ, Gate::CY, Gate::Swap];

    fn random_clifford_circuit(n: usize, gates: usize, rng: &mut StdRng) -> Circuit {
        let mut c = Circuit::new(n, 0);
        for _ in 0..gates {
            if n >= 2 && rng.gen::<f64>() < 0.4 {
                let a = rng.gen_range(0..n);
                let mut b = rng.gen_range(0..n - 1);
                if b >= a {
                    b += 1;
                }
                c.gate(
                    CLIFFORD_2Q[rng.gen_range(0..CLIFFORD_2Q.len())].clone(),
                    &[a, b],
                );
            } else {
                let q = rng.gen_range(0..n);
                c.gate(
                    CLIFFORD_1Q[rng.gen_range(0..CLIFFORD_1Q.len())].clone(),
                    &[q],
                );
            }
        }
        c
    }

    #[test]
    fn initial_state_converts_to_all_zeros() {
        let t = Tableau::new(3);
        let sv = t.to_statevector();
        assert!((sv.amplitude(0).re - 1.0).abs() < 1e-12);
    }

    #[test]
    fn bell_state_matches_dense() {
        let mut t = Tableau::new(2);
        t.apply_h(0);
        t.apply_cx(0, 1);
        let sv = t.to_statevector();
        let mut dense = StateVector::new(2);
        dense.apply_gate(&Gate::H, &[0]);
        dense.apply_gate(&Gate::CX, &[0, 1]);
        assert!(fidelity_gap(&sv, &dense) < 1e-12);
    }

    #[test]
    fn every_clifford_gate_matches_dense_conjugation() {
        let mut rng = StdRng::seed_from_u64(41);
        for trial in 0..60 {
            let c = random_clifford_circuit(3, 12 + trial % 7, &mut rng);
            let mut t = Tableau::new(3);
            let mut dense = StateVector::new(3);
            for instr in c.instructions() {
                if let Op::Gate(g, qs) = &instr.op {
                    t.apply_gate(g, qs);
                    dense.apply_gate(g, qs);
                }
            }
            assert!(
                fidelity_gap(&t.to_statevector(), &dense) < 1e-10,
                "trial {trial} diverged:\n{c}"
            );
        }
    }

    #[test]
    fn deterministic_outcomes() {
        let mut t = Tableau::new(2);
        assert_eq!(t.deterministic_outcome(0), Some(false));
        assert_eq!(t.prob_one(0), 0.0);
        t.apply_x(1);
        assert_eq!(t.deterministic_outcome(1), Some(true));
        assert_eq!(t.prob_one(1), 1.0);
        // |+⟩ is random.
        t.apply_h(0);
        assert_eq!(t.deterministic_outcome(0), None);
        assert_eq!(t.prob_one(0), 0.5);
    }

    #[test]
    fn collapse_probabilities_match_dense() {
        let mut rng = StdRng::seed_from_u64(17);
        for _ in 0..40 {
            let c = random_clifford_circuit(3, 10, &mut rng);
            let mut t = Tableau::new(3);
            let mut dense = StateVector::new(3);
            for instr in c.instructions() {
                if let Op::Gate(g, qs) = &instr.op {
                    t.apply_gate(g, qs);
                    dense.apply_gate(g, qs);
                }
            }
            let q = rng.gen_range(0..3);
            let p1 = t.prob_one(q);
            assert!((p1 - dense.prob_one(q)).abs() < 1e-10);
            let outcome = if p1 == 0.5 {
                rng.gen::<f64>() < 0.5
            } else {
                p1 == 1.0
            };
            let got = t.collapse(q, outcome);
            let want = dense.collapse(q, outcome);
            assert!((got - want).abs() < 1e-10);
            assert!(fidelity_gap(&t.to_statevector(), &dense) < 1e-10);
        }
    }

    #[test]
    fn ghz_run_outcomes_are_correlated() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut c = Circuit::new(4, 4);
        c.h(0);
        for q in 0..3 {
            c.cx(q, q + 1);
        }
        for q in 0..4 {
            c.measure(q, q);
        }
        let (mut zeros, mut ones) = (0u32, 0u32);
        for _ in 0..400 {
            let clbits = Tableau::new(4).run(&c, &mut rng);
            match clbits {
                0b0000 => zeros += 1,
                0b1111 => ones += 1,
                other => panic!("uncorrelated GHZ outcome {other:b}"),
            }
        }
        assert!(zeros > 120 && ones > 120, "{zeros} vs {ones}");
    }

    #[test]
    fn feed_forward_reset_run() {
        // Measure |+⟩, X-correct conditioned on the outcome: always |1⟩…
        let mut c = Circuit::new(1, 2);
        c.h(0).measure(0, 0);
        c.gate_if(Gate::X, &[0], 0, false);
        c.measure(0, 1);
        // …then reset back to |0⟩.
        c.reset(0);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..50 {
            let mut t = Tableau::new(1);
            let clbits = t.run(&c, &mut rng);
            assert_eq!(clbits >> 1, 1, "correction failed");
            assert_eq!(t.deterministic_outcome(0), Some(false), "reset failed");
        }
    }

    #[test]
    fn prefix_classification() {
        let mut c = Circuit::new(2, 1);
        c.h(0).cx(0, 1).measure(0, 0);
        c.x_if(1, 0);
        c.t(1); // first non-Clifford
        c.h(1);
        assert_eq!(clifford_prefix_len(&c), 4);
        let p = CliffordPrefix::split(&c);
        assert_eq!(p.prefix_len, 4);
        assert!(!p.is_full());
        assert!((p.fraction() - 4.0 / 6.0).abs() < 1e-12);
        let mut full = Circuit::new(1, 0);
        full.h(0).s(0);
        assert!(CliffordPrefix::split(&full).is_full());
        assert!(CliffordPrefix::split(&Circuit::new(1, 0)).is_full());
    }

    #[test]
    #[should_panic(expected = "non-Clifford gate")]
    fn non_clifford_gate_panics() {
        let mut t = Tableau::new(1);
        t.apply_gate(&Gate::T, &[0]);
    }

    #[test]
    fn random_measurement_branches_match_dense_states() {
        let mut rng = StdRng::seed_from_u64(23);
        for _ in 0..20 {
            let c = random_clifford_circuit(4, 14, &mut rng);
            let mut t = Tableau::new(4);
            let mut dense = StateVector::new(4);
            for instr in c.instructions() {
                if let Op::Gate(g, qs) = &instr.op {
                    t.apply_gate(g, qs);
                    dense.apply_gate(g, qs);
                }
            }
            for q in 0..4 {
                if t.prob_one(q) != 0.5 {
                    continue;
                }
                for outcome in [false, true] {
                    let mut tb = t.clone();
                    let mut db = dense.clone();
                    assert_eq!(tb.collapse(q, outcome), 0.5);
                    db.collapse(q, outcome);
                    assert!(fidelity_gap(&tb.to_statevector(), &db) < 1e-10);
                }
            }
        }
    }
}

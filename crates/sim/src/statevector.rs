//! Statevector simulation with strided in-place gate kernels.
//!
//! The hot loops follow the standard bit-stride scheme: a single-qubit gate
//! on qubit `q` touches amplitude pairs `(i, i + 2^q)`; a two-qubit gate
//! touches quadruples. Everything is applied in place with no per-gate
//! allocation, per the workspace performance guide.

use crate::circuit::{Circuit, Op};
use crate::gate::Gate;
use crate::pauli::{Pauli, PauliString};
use qlinalg::vector;
use qlinalg::{c64, Complex64, Matrix, C_ONE, C_ZERO};
use rand::Rng;

/// A pure quantum state of `n` qubits stored as `2^n` complex amplitudes,
/// little-endian (qubit 0 = least significant index bit).
#[derive(Clone, Debug, PartialEq)]
pub struct StateVector {
    n: usize,
    amps: Vec<Complex64>,
}

impl StateVector {
    /// The all-zeros state `|0…0⟩`.
    pub fn new(n: usize) -> Self {
        assert!(n <= 30, "statevector too large");
        let mut amps = vec![C_ZERO; 1 << n];
        amps[0] = C_ONE;
        Self { n, amps }
    }

    /// Builds a state from explicit amplitudes (must have length `2^n` and
    /// unit norm within `1e-8`).
    pub fn from_amplitudes(n: usize, amps: Vec<Complex64>) -> Self {
        assert_eq!(amps.len(), 1 << n, "amplitude count mismatch");
        let norm = vector::norm(&amps);
        assert!(
            (norm - 1.0).abs() < 1e-8,
            "state not normalised (norm {norm})"
        );
        Self { n, amps }
    }

    /// Builds an unnormalised state and normalises it.
    pub fn from_amplitudes_normalised(n: usize, mut amps: Vec<Complex64>) -> Self {
        assert_eq!(amps.len(), 1 << n);
        vector::normalize(&mut amps);
        Self { n, amps }
    }

    /// Number of qubits.
    #[inline]
    pub fn num_qubits(&self) -> usize {
        self.n
    }

    /// Amplitude slice.
    #[inline]
    pub fn amplitudes(&self) -> &[Complex64] {
        &self.amps
    }

    /// Single amplitude.
    #[inline]
    pub fn amplitude(&self, index: usize) -> Complex64 {
        self.amps[index]
    }

    /// 2-norm of the state (should be 1 for physical states).
    pub fn norm(&self) -> f64 {
        vector::norm(&self.amps)
    }

    /// Tensor product `self ⊗ other`, with `other` occupying the **lower**
    /// qubit indices of the result (so `a.tensor(b)` is `|a⟩⊗|b⟩` in the
    /// big-endian ket picture `|a b⟩`).
    pub fn tensor(&self, other: &StateVector) -> StateVector {
        StateVector {
            n: self.n + other.n,
            amps: vector::kron_vec(&self.amps, &other.amps),
        }
    }

    // ----------------------------------------------------------------
    // Gate application
    // ----------------------------------------------------------------

    /// Applies a gate to the given qubit operands.
    pub fn apply_gate(&mut self, gate: &Gate, qubits: &[usize]) {
        debug_assert_eq!(gate.arity(), qubits.len());
        match gate {
            Gate::I => {}
            Gate::X => self.apply_x(qubits[0]),
            Gate::Z => self.apply_z(qubits[0]),
            Gate::S => self.apply_phase(qubits[0], Complex64::i()),
            Gate::Sdg => self.apply_phase(qubits[0], c64(0.0, -1.0)),
            Gate::T => self.apply_phase(qubits[0], Complex64::cis(std::f64::consts::FRAC_PI_4)),
            Gate::Tdg => self.apply_phase(qubits[0], Complex64::cis(-std::f64::consts::FRAC_PI_4)),
            Gate::Phase(l) => self.apply_phase(qubits[0], Complex64::cis(*l)),
            Gate::CX => self.apply_cx(qubits[0], qubits[1]),
            Gate::CZ => self.apply_cz(qubits[0], qubits[1]),
            Gate::Swap => self.apply_swap(qubits[0], qubits[1]),
            g => {
                let m = g.matrix();
                match qubits.len() {
                    1 => self.apply_matrix1(&m, qubits[0]),
                    2 => self.apply_matrix2(&m, qubits[0], qubits[1]),
                    _ => self.apply_matrix(&m, qubits),
                }
            }
        }
    }

    /// Applies a dense 2×2 unitary to qubit `q`.
    ///
    /// The inner loop works on split re/im `f64` locals (no `Complex64`
    /// temporaries), and exactly-diagonal / exactly-antidiagonal matrices
    /// — the shape every fused phase/rotation chain collapses to — take
    /// scale-only / swap-and-scale passes touching half the flops.
    pub fn apply_matrix1(&mut self, m: &Matrix, q: usize) {
        debug_assert_eq!(m.rows(), 2);
        let (m00, m01, m10, m11) = (m[(0, 0)], m[(0, 1)], m[(1, 0)], m[(1, 1)]);
        let step = 1usize << q;
        let dim = self.amps.len();
        let zero = |c: Complex64| c.re == 0.0 && c.im == 0.0;
        if zero(m01) && zero(m10) {
            // Diagonal: amps[i] *= m00, amps[i+step] *= m11.
            let mut base = 0usize;
            while base < dim {
                for i in base..base + step {
                    self.amps[i] *= m00;
                    self.amps[i + step] *= m11;
                }
                base += step << 1;
            }
            return;
        }
        if zero(m00) && zero(m11) {
            // Antidiagonal (X·diag): swap the pair, then scale.
            let mut base = 0usize;
            while base < dim {
                for i in base..base + step {
                    let a = self.amps[i];
                    self.amps[i] = m01 * self.amps[i + step];
                    self.amps[i + step] = m10 * a;
                }
                base += step << 1;
            }
            return;
        }
        let (m00r, m00i, m01r, m01i) = (m00.re, m00.im, m01.re, m01.im);
        let (m10r, m10i, m11r, m11i) = (m10.re, m10.im, m11.re, m11.im);
        let mut base = 0usize;
        while base < dim {
            for i in base..base + step {
                let (ar, ai) = (self.amps[i].re, self.amps[i].im);
                let (br, bi) = (self.amps[i + step].re, self.amps[i + step].im);
                self.amps[i] = c64(
                    m00r * ar - m00i * ai + m01r * br - m01i * bi,
                    m00r * ai + m00i * ar + m01r * bi + m01i * br,
                );
                self.amps[i + step] = c64(
                    m10r * ar - m10i * ai + m11r * br - m11i * bi,
                    m10r * ai + m10i * ar + m11r * bi + m11i * br,
                );
            }
            base += step << 1;
        }
    }

    /// Applies a dense 4×4 unitary to qubits `(q0, q1)` where `q0` carries
    /// bit 0 of the matrix index and `q1` bit 1.
    ///
    /// Enumerates the `2^{n−2}` base indices directly by zero-bit
    /// insertion instead of scanning (and discarding ¾ of) the full
    /// index range.
    pub fn apply_matrix2(&mut self, m: &Matrix, q0: usize, q1: usize) {
        debug_assert_eq!(m.rows(), 4);
        debug_assert_ne!(q0, q1);
        let dim = self.amps.len();
        let b0 = 1usize << q0;
        let b1 = 1usize << q1;
        let (lo, hi) = if b0 < b1 { (b0, b1) } else { (b1, b0) };
        let mut rows = [[C_ZERO; 4]; 4];
        for r in 0..4 {
            for c in 0..4 {
                rows[r][c] = m[(r, c)];
            }
        }
        for t in 0..dim >> 2 {
            // Insert a zero bit at the lower then the higher position.
            let s = ((t & !(lo - 1)) << 1) | (t & (lo - 1));
            let i = ((s & !(hi - 1)) << 1) | (s & (hi - 1));
            let idx = [i, i | b0, i | b1, i | b0 | b1];
            let v = [
                self.amps[idx[0]],
                self.amps[idx[1]],
                self.amps[idx[2]],
                self.amps[idx[3]],
            ];
            for r in 0..4 {
                let row = &rows[r];
                let mut acc = row[0] * v[0];
                acc = row[1].mul_add(v[1], acc);
                acc = row[2].mul_add(v[2], acc);
                acc = row[3].mul_add(v[3], acc);
                self.amps[idx[r]] = acc;
            }
        }
    }

    /// Applies a dense `2^k × 2^k` unitary to an arbitrary ordered qubit
    /// subset (`qubits[i]` is bit `i` of the matrix index).
    ///
    /// Batched kernel: scatter offsets `offs[s] = Σ_{b∈s} 2^{q_b}` are
    /// precomputed once, base indices are enumerated by zero-bit
    /// insertion (`2^{n−k}` iterations, not `2^n`), and the matrix rows
    /// are walked as contiguous slices — one gather, `2^k` dot products,
    /// one scatter per block.
    pub fn apply_matrix(&mut self, m: &Matrix, qubits: &[usize]) {
        let k = qubits.len();
        debug_assert_eq!(m.rows(), 1 << k);
        match k {
            1 => return self.apply_matrix1(m, qubits[0]),
            2 => return self.apply_matrix2(m, qubits[0], qubits[1]),
            _ => {}
        }
        let dim = self.amps.len();
        let sub = 1usize << k;
        // offs[s]: statevector offset of matrix index s relative to a base.
        let mut offs = vec![0usize; sub];
        for (s, off) in offs.iter_mut().enumerate() {
            for (b, &q) in qubits.iter().enumerate() {
                if (s >> b) & 1 == 1 {
                    *off |= 1 << q;
                }
            }
        }
        let mut sorted_bits: Vec<usize> = qubits.iter().map(|&q| 1usize << q).collect();
        sorted_bits.sort_unstable();
        let mut gathered = vec![C_ZERO; sub];
        for t in 0..dim >> k {
            let mut base = t;
            for &bit in &sorted_bits {
                base = ((base & !(bit - 1)) << 1) | (base & (bit - 1));
            }
            for (g, &off) in gathered.iter_mut().zip(&offs) {
                *g = self.amps[base | off];
            }
            for (r, &off) in offs.iter().enumerate() {
                let row = m.row(r);
                let mut acc = C_ZERO;
                for (&mrs, &g) in row.iter().zip(&gathered) {
                    acc = mrs.mul_add(g, acc);
                }
                self.amps[base | off] = acc;
            }
        }
    }

    #[inline]
    fn apply_x(&mut self, q: usize) {
        let step = 1usize << q;
        let dim = self.amps.len();
        let mut base = 0usize;
        while base < dim {
            for i in base..base + step {
                self.amps.swap(i, i + step);
            }
            base += step << 1;
        }
    }

    #[inline]
    fn apply_z(&mut self, q: usize) {
        let step = 1usize << q;
        let dim = self.amps.len();
        let mut base = step;
        while base < dim {
            for i in base..base + step {
                self.amps[i] = -self.amps[i];
            }
            base += step << 1;
        }
    }

    #[inline]
    fn apply_phase(&mut self, q: usize, phase: Complex64) {
        let step = 1usize << q;
        let dim = self.amps.len();
        let mut base = step;
        while base < dim {
            for i in base..base + step {
                self.amps[i] *= phase;
            }
            base += step << 1;
        }
    }

    #[inline]
    fn apply_cx(&mut self, control: usize, target: usize) {
        let cb = 1usize << control;
        let tb = 1usize << target;
        let dim = self.amps.len();
        for i in 0..dim {
            // Visit each swap pair once: control set, target clear.
            if i & cb != 0 && i & tb == 0 {
                self.amps.swap(i, i | tb);
            }
        }
    }

    #[inline]
    fn apply_cz(&mut self, a: usize, b: usize) {
        let ab = (1usize << a) | (1usize << b);
        for (i, amp) in self.amps.iter_mut().enumerate() {
            if i & ab == ab {
                *amp = -*amp;
            }
        }
    }

    #[inline]
    fn apply_swap(&mut self, a: usize, b: usize) {
        let ba = 1usize << a;
        let bb = 1usize << b;
        let dim = self.amps.len();
        for i in 0..dim {
            if i & ba != 0 && i & bb == 0 {
                self.amps.swap(i, (i & !ba) | bb);
            }
        }
    }

    /// Applies every instruction of a **unitary** circuit.
    ///
    /// # Panics
    /// Panics on measurement/reset/conditioned instructions — use
    /// [`crate::executor`] for those.
    pub fn apply_circuit(&mut self, circuit: &Circuit) {
        assert_eq!(circuit.num_qubits(), self.n, "qubit count mismatch");
        for instr in circuit.instructions() {
            assert!(
                instr.condition.is_none(),
                "conditioned instruction in apply_circuit"
            );
            match &instr.op {
                Op::Gate(g, qs) => self.apply_gate(g, qs),
                Op::Barrier => {}
                other => panic!("non-unitary op {other:?} in apply_circuit"),
            }
        }
    }

    // ----------------------------------------------------------------
    // Measurement
    // ----------------------------------------------------------------

    /// Probability that measuring qubit `q` yields 1.
    pub fn prob_one(&self, q: usize) -> f64 {
        let bit = 1usize << q;
        self.amps
            .iter()
            .enumerate()
            .filter(|(i, _)| i & bit != 0)
            .map(|(_, a)| a.norm_sqr())
            .sum()
    }

    /// Projects qubit `q` onto `outcome` and renormalises; returns the
    /// probability of that outcome (the state is unchanged if it is 0).
    pub fn collapse(&mut self, q: usize, outcome: bool) -> f64 {
        let bit = 1usize << q;
        let want = if outcome { bit } else { 0 };
        let mut p = 0.0;
        for (i, a) in self.amps.iter().enumerate() {
            if i & bit == want {
                p += a.norm_sqr();
            }
        }
        if p <= 0.0 {
            return 0.0;
        }
        let scale = 1.0 / p.sqrt();
        for (i, a) in self.amps.iter_mut().enumerate() {
            if i & bit == want {
                *a = a.scale(scale);
            } else {
                *a = C_ZERO;
            }
        }
        p
    }

    /// Measures qubit `q` in the Z basis, collapsing the state.
    pub fn measure<R: Rng + ?Sized>(&mut self, q: usize, rng: &mut R) -> bool {
        let p1 = self.prob_one(q);
        let outcome = rng.gen::<f64>() < p1;
        self.collapse(q, outcome);
        outcome
    }

    /// Resets qubit `q` to `|0⟩` (measure, then flip if 1).
    pub fn reset<R: Rng + ?Sized>(&mut self, q: usize, rng: &mut R) {
        if self.measure(q, rng) {
            self.apply_x(q);
        }
    }

    /// All `2^n` computational-basis probabilities.
    pub fn probabilities(&self) -> Vec<f64> {
        self.amps.iter().map(|a| a.norm_sqr()).collect()
    }

    /// Draws a full Z-basis measurement outcome **without** collapsing.
    pub fn sample_z_basis<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let r: f64 = rng.gen();
        let mut acc = 0.0;
        for (i, a) in self.amps.iter().enumerate() {
            acc += a.norm_sqr();
            if r < acc {
                return i;
            }
        }
        self.amps.len() - 1
    }

    // ----------------------------------------------------------------
    // Observables
    // ----------------------------------------------------------------

    /// Exact expectation value `⟨ψ|P|ψ⟩` of a Pauli string.
    pub fn expval_pauli(&self, p: &PauliString) -> f64 {
        assert_eq!(p.num_qubits(), self.n);
        // ⟨ψ|P|ψ⟩ = Σ_i conj(ψ_i) · phase_i · ψ_{i ⊕ flip}
        let mut flip = 0usize;
        for (q, &op) in p.ops().iter().enumerate() {
            if matches!(op, Pauli::X | Pauli::Y) {
                flip |= 1 << q;
            }
        }
        let mut acc = C_ZERO;
        for (i, a) in self.amps.iter().enumerate() {
            let j = i ^ flip;
            // phase of P|j⟩ component landing on |i⟩
            let mut phase = C_ONE;
            for (q, &op) in p.ops().iter().enumerate() {
                let bj = (j >> q) & 1;
                match op {
                    Pauli::I => {}
                    Pauli::X => {}
                    Pauli::Y => {
                        // Y|0⟩ = i|1⟩, Y|1⟩ = −i|0⟩
                        phase *= if bj == 0 {
                            Complex64::i()
                        } else {
                            c64(0.0, -1.0)
                        };
                    }
                    Pauli::Z => {
                        if bj == 1 {
                            phase = -phase;
                        }
                    }
                }
            }
            acc += a.conj() * phase * self.amps[j];
        }
        debug_assert!(acc.im.abs() < 1e-9, "Pauli expectation not real: {acc:?}");
        acc.re
    }

    /// Exact `⟨Z⟩` on qubit `q` — the paper's observable.
    pub fn expval_z(&self, q: usize) -> f64 {
        let bit = 1usize << q;
        let mut acc = 0.0;
        for (i, a) in self.amps.iter().enumerate() {
            let p = a.norm_sqr();
            acc += if i & bit == 0 { p } else { -p };
        }
        acc
    }

    /// Density operator `|ψ⟩⟨ψ|` of the full register.
    pub fn to_density(&self) -> Matrix {
        vector::outer(&self.amps, &self.amps)
    }

    /// Reduced density operator on the listed qubits (ordered: `keep[i]`
    /// becomes qubit `i` of the result), tracing out the rest.
    pub fn reduced_density(&self, keep: &[usize]) -> Matrix {
        let k = keep.len();
        let kd = 1usize << k;
        let rest: Vec<usize> = (0..self.n).filter(|q| !keep.contains(q)).collect();
        let rd = 1usize << rest.len();
        let mut rho = Matrix::zeros(kd, kd);
        let index_of = |kept_bits: usize, rest_bits: usize| -> usize {
            let mut idx = 0usize;
            for (b, &q) in keep.iter().enumerate() {
                idx |= ((kept_bits >> b) & 1) << q;
            }
            for (b, &q) in rest.iter().enumerate() {
                idx |= ((rest_bits >> b) & 1) << q;
            }
            idx
        };
        for r in 0..kd {
            for c in 0..kd {
                let mut acc = C_ZERO;
                for e in 0..rd {
                    let a = self.amps[index_of(r, e)];
                    let b = self.amps[index_of(c, e)];
                    acc += a * b.conj();
                }
                rho[(r, c)] = acc;
            }
        }
        rho
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    const TOL: f64 = 1e-12;

    #[test]
    fn initial_state_is_all_zeros() {
        let sv = StateVector::new(3);
        assert!(sv.amplitude(0).approx_eq(C_ONE, TOL));
        assert!((sv.norm() - 1.0).abs() < TOL);
        assert_eq!(sv.amplitudes().len(), 8);
    }

    #[test]
    fn x_flips_qubit() {
        let mut sv = StateVector::new(2);
        sv.apply_gate(&Gate::X, &[1]);
        assert!(sv.amplitude(0b10).approx_eq(C_ONE, TOL));
    }

    #[test]
    fn h_creates_uniform_superposition() {
        let mut sv = StateVector::new(1);
        sv.apply_gate(&Gate::H, &[0]);
        let s2 = std::f64::consts::FRAC_1_SQRT_2;
        assert!(sv.amplitude(0).approx_eq(c64(s2, 0.0), TOL));
        assert!(sv.amplitude(1).approx_eq(c64(s2, 0.0), TOL));
    }

    #[test]
    fn bell_state_via_fast_paths() {
        let mut sv = StateVector::new(2);
        sv.apply_gate(&Gate::H, &[0]);
        sv.apply_gate(&Gate::CX, &[0, 1]);
        let s2 = std::f64::consts::FRAC_1_SQRT_2;
        assert!(sv.amplitude(0b00).approx_eq(c64(s2, 0.0), TOL));
        assert!(sv.amplitude(0b11).approx_eq(c64(s2, 0.0), TOL));
        assert!(sv.amplitude(0b01).abs() < TOL);
        assert!(sv.amplitude(0b10).abs() < TOL);
    }

    #[test]
    fn fast_paths_match_dense_kernels() {
        // Every special-cased gate must agree with generic matrix application.
        let mut rng = StdRng::seed_from_u64(7);
        let gates_1q = [
            Gate::X,
            Gate::Z,
            Gate::S,
            Gate::Sdg,
            Gate::T,
            Gate::Tdg,
            Gate::Phase(0.9),
        ];
        for g in gates_1q {
            for q in 0..3 {
                let mut sv = random_state(3, &mut rng);
                let mut sv2 = sv.clone();
                sv.apply_gate(&g, &[q]);
                sv2.apply_matrix1(&g.matrix(), q);
                assert!(
                    vector::approx_eq(sv.amplitudes(), sv2.amplitudes(), 1e-12),
                    "fast path mismatch for {g} on q{q}"
                );
            }
        }
        let gates_2q = [Gate::CX, Gate::CZ, Gate::Swap];
        for g in gates_2q {
            for (a, b) in [(0, 1), (1, 0), (0, 2), (2, 1)] {
                let mut sv = random_state(3, &mut rng);
                let mut sv2 = sv.clone();
                sv.apply_gate(&g, &[a, b]);
                sv2.apply_matrix2(&g.matrix(), a, b);
                assert!(
                    vector::approx_eq(sv.amplitudes(), sv2.amplitudes(), 1e-12),
                    "fast path mismatch for {g} on ({a},{b})"
                );
            }
        }
    }

    fn random_state(n: usize, rng: &mut StdRng) -> StateVector {
        let amps: Vec<Complex64> = (0..(1 << n))
            .map(|_| c64(rng.gen::<f64>() - 0.5, rng.gen::<f64>() - 0.5))
            .collect();
        StateVector::from_amplitudes_normalised(n, amps)
    }

    #[test]
    fn apply_matrix_three_qubit_matches_embedding() {
        use crate::circuit::embed_unitary;
        let mut rng = StdRng::seed_from_u64(11);
        let sv0 = random_state(3, &mut rng);
        // Toffoli-like random 8x8 unitary from QR.
        let raw = Matrix::from_fn(8, 8, |_, _| {
            c64(rng.gen::<f64>() - 0.5, rng.gen::<f64>() - 0.5)
        });
        let u = qlinalg::qr(&raw).q;
        let mut sv = sv0.clone();
        sv.apply_matrix(&u, &[0, 1, 2]);
        let full = embed_unitary(&u, &[0, 1, 2], 3);
        let expect = full.matvec(sv0.amplitudes());
        assert!(vector::approx_eq(sv.amplitudes(), &expect, 1e-10));
        // And on a permuted qubit order.
        let mut sv = sv0.clone();
        sv.apply_matrix(&u, &[2, 0, 1]);
        let full = embed_unitary(&u, &[2, 0, 1], 3);
        let expect = full.matvec(sv0.amplitudes());
        assert!(vector::approx_eq(sv.amplitudes(), &expect, 1e-10));
    }

    #[test]
    fn gates_preserve_norm() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut sv = random_state(4, &mut rng);
        for g in [Gate::H, Gate::T, Gate::Ry(0.77), Gate::U(1.0, 0.5, -0.3)] {
            sv.apply_gate(&g, &[2]);
            assert!((sv.norm() - 1.0).abs() < 1e-10);
        }
        sv.apply_gate(&Gate::CX, &[1, 3]);
        assert!((sv.norm() - 1.0).abs() < 1e-10);
    }

    #[test]
    fn prob_one_and_collapse_consistent() {
        let mut sv = StateVector::new(1);
        sv.apply_gate(&Gate::Ry(1.0), &[0]);
        let p1 = sv.prob_one(0);
        assert!((p1 - (0.5f64).sin().powi(2)).abs() < 1e-12);
        let mut sv1 = sv.clone();
        let got = sv1.collapse(0, true);
        assert!((got - p1).abs() < 1e-12);
        assert!((sv1.prob_one(0) - 1.0).abs() < 1e-12);
        assert!((sv1.norm() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn measurement_statistics_follow_born_rule() {
        let mut rng = StdRng::seed_from_u64(42);
        let mut ones = 0usize;
        let trials = 20_000;
        for _ in 0..trials {
            let mut sv = StateVector::new(1);
            sv.apply_gate(&Gate::Ry(2.0 * (0.3f64).asin()), &[0]); // p1 = 0.09
            if sv.measure(0, &mut rng) {
                ones += 1;
            }
        }
        let freq = ones as f64 / trials as f64;
        assert!((freq - 0.09).abs() < 0.01, "freq {freq} too far from 0.09");
    }

    #[test]
    fn expval_z_matches_probabilities() {
        let mut sv = StateVector::new(2);
        sv.apply_gate(&Gate::Ry(1.1), &[0]);
        sv.apply_gate(&Gate::H, &[1]);
        let p1 = sv.prob_one(0);
        assert!((sv.expval_z(0) - (1.0 - 2.0 * p1)).abs() < 1e-12);
        assert!(sv.expval_z(1).abs() < 1e-12);
    }

    #[test]
    fn expval_pauli_on_bell_state() {
        let mut sv = StateVector::new(2);
        sv.apply_gate(&Gate::H, &[0]);
        sv.apply_gate(&Gate::CX, &[0, 1]);
        assert!((sv.expval_pauli(&PauliString::from_label("XX")) - 1.0).abs() < 1e-12);
        assert!((sv.expval_pauli(&PauliString::from_label("ZZ")) - 1.0).abs() < 1e-12);
        assert!((sv.expval_pauli(&PauliString::from_label("YY")) + 1.0).abs() < 1e-12);
        assert!(sv.expval_pauli(&PauliString::from_label("ZI")).abs() < 1e-12);
        assert!(sv.expval_pauli(&PauliString::from_label("IX")).abs() < 1e-12);
    }

    #[test]
    fn expval_pauli_matches_dense_matrix() {
        let mut rng = StdRng::seed_from_u64(5);
        let sv = random_state(3, &mut rng);
        for label in ["XYZ", "ZZI", "IYX", "YYY", "XIZ"] {
            let ps = PauliString::from_label(label);
            let dense = ps.matrix();
            let v = dense.matvec(sv.amplitudes());
            let expect = vector::inner(sv.amplitudes(), &v).re;
            assert!(
                (sv.expval_pauli(&ps) - expect).abs() < 1e-10,
                "expval mismatch for {label}"
            );
        }
    }

    #[test]
    fn sample_z_basis_distribution() {
        let mut rng = StdRng::seed_from_u64(99);
        let mut sv = StateVector::new(2);
        sv.apply_gate(&Gate::H, &[0]);
        sv.apply_gate(&Gate::H, &[1]);
        let mut counts = [0usize; 4];
        let trials = 40_000;
        for _ in 0..trials {
            counts[sv.sample_z_basis(&mut rng)] += 1;
        }
        for &c in &counts {
            let f = c as f64 / trials as f64;
            assert!((f - 0.25).abs() < 0.02, "uniform sampling off: {f}");
        }
    }

    #[test]
    fn reduced_density_of_bell_is_maximally_mixed() {
        let mut sv = StateVector::new(2);
        sv.apply_gate(&Gate::H, &[0]);
        sv.apply_gate(&Gate::CX, &[0, 1]);
        let rho = sv.reduced_density(&[0]);
        assert!(rho.approx_eq(&Matrix::identity(2).scale_re(0.5), 1e-12));
        let rho1 = sv.reduced_density(&[1]);
        assert!(rho1.approx_eq(&Matrix::identity(2).scale_re(0.5), 1e-12));
    }

    #[test]
    fn reduced_density_of_product_state_is_pure() {
        let mut sv = StateVector::new(2);
        sv.apply_gate(&Gate::Ry(0.9), &[0]);
        sv.apply_gate(&Gate::H, &[1]);
        let rho = sv.reduced_density(&[0]);
        let purity = rho.matmul(&rho).trace().re;
        assert!((purity - 1.0).abs() < 1e-12);
    }

    #[test]
    fn tensor_product_order() {
        let mut a = StateVector::new(1);
        a.apply_gate(&Gate::X, &[0]); // |1⟩
        let b = StateVector::new(1); // |0⟩
        let ab = a.tensor(&b); // |1⟩⊗|0⟩ = |10⟩ → index 2
        assert!(ab.amplitude(0b10).approx_eq(C_ONE, TOL));
    }

    #[test]
    fn reset_forces_zero() {
        let mut rng = StdRng::seed_from_u64(17);
        for _ in 0..20 {
            let mut sv = StateVector::new(2);
            sv.apply_gate(&Gate::H, &[0]);
            sv.apply_gate(&Gate::CX, &[0, 1]);
            sv.reset(0, &mut rng);
            assert!(sv.prob_one(0) < 1e-12);
            assert!((sv.norm() - 1.0).abs() < 1e-10);
        }
    }

    #[test]
    fn apply_circuit_runs_unitary_sequence() {
        let mut c = Circuit::new(2, 0);
        c.h(0).cx(0, 1).z(1);
        let mut sv = StateVector::new(2);
        sv.apply_circuit(&c);
        let s2 = std::f64::consts::FRAC_1_SQRT_2;
        assert!(sv.amplitude(0b00).approx_eq(c64(s2, 0.0), TOL));
        assert!(sv.amplitude(0b11).approx_eq(c64(-s2, 0.0), TOL));
    }

    #[test]
    #[should_panic(expected = "statevector too large")]
    fn oversized_register_panics() {
        let _ = StateVector::new(31);
    }
}

//! Distributed execution of an entangling circuit: cut *two* wires of a
//! GHZ-type preparation so that the sender and receiver devices each hold
//! half of the computation.
//!
//! The sender prepares an entangled 2-qubit state; both wires are then
//! cut (the paper's Figure 4 scenario, twice in parallel) and the
//! receiver measures the joint observable `Z⊗Z`. With product QPDs the
//! overhead multiplies — κ_total = κ² — which is why raising per-cut
//! entanglement matters so much for multi-cut workloads (paper §VI).
//!
//! Run with: `cargo run --release --example distributed_ghz`
//!
//! # Expected output
//!
//! A seeded, deterministic table sweeping the per-pair overlap
//! `f(Φk) ∈ {0.5, 0.7, 0.9, 1.0}` for the doubly-cut GHZ circuit with
//! exact `⟨ZZ⟩ = +1`: the `κ per cut` column follows Theorem 1
//! (`2/f − 1`), `κ total` is its square, and the 6000-shot estimate
//! tightens from `|error| ≈ 0.2` at `f = 0.5` to exactly `0` at
//! `f = 1.0`, where both cuts degrade into plain teleportations.

use nme_wire_cutting::qpd::{estimate_allocated, Allocator};
use nme_wire_cutting::qsim::{Circuit, PauliString, StateVector};
use nme_wire_cutting::wirecut::multi::{ParallelWireCut, PreparedMultiCut};
use nme_wire_cutting::wirecut::NmeCut;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // Sender-side circuit: a tilted GHZ-like state Ry(0.7)·CX across the
    // two qubits that will cross the device boundary.
    let mut sender = Circuit::new(2, 0);
    sender.ry(0.7, 0).cx(0, 1);

    // Uncut reference value of ⟨ZZ⟩.
    let mut sv = StateVector::new(2);
    sv.apply_circuit(&sender);
    let exact = sv.expval_pauli(&PauliString::from_label("ZZ"));
    println!("exact ⟨ZZ⟩ of the uncut circuit: {exact:+.6}");
    println!();

    let shots = 6000u64;
    let mut rng = StdRng::seed_from_u64(7);
    println!("cutting both wires, {shots} shots per estimate:");
    println!();
    println!("   f(Φk)   κ per cut   κ total   estimate    |error|");
    println!("  ----------------------------------------------------");
    for f in [0.5, 0.7, 0.9, 1.0] {
        let cut = ParallelWireCut::uniform(NmeCut::from_overlap(f), 2);
        let prepared = PreparedMultiCut::new(&cut, &sender, &PauliString::from_label("ZZ"));
        // The product QPD still reproduces the exact value:
        assert!((prepared.exact_value() - exact).abs() < 1e-8);
        let est = estimate_allocated(
            &prepared.spec,
            &prepared.samplers(),
            shots,
            Allocator::Proportional,
            &mut rng,
        );
        let per_cut = NmeCut::from_overlap(f);
        println!(
            "   {f:.2}     {:.4}     {:.4}    {est:+.6}   {:.6}",
            nme_wire_cutting::wirecut::WireCut::kappa(&per_cut),
            cut.kappa(),
            (est - exact).abs()
        );
    }

    println!();
    println!("with maximally entangled pairs (f = 1.0) both cuts degrade into");
    println!("teleportations and the overhead disappears entirely: this is");
    println!("distributed quantum computation with classical communication only");
    println!("at the QPD level, quantum resources at the state level.");
}

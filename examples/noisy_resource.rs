//! Future-work extension (paper §VI): wire cutting with **noisy**
//! (mixed) resource states.
//!
//! Real entanglement distribution produces Werner-like states
//! `ρ_W = p·|Φ⟩⟨Φ| + (1−p)·I/4` rather than pure `|Φ_k⟩`. Teleporting
//! through them injects depolarising noise; a quasiprobability inversion
//! of that Pauli channel still cuts the wire exactly, at overhead
//! `κ = (3/p − 1)/2` — above the Theorem 1 optimum `γ = 2/f − 1`, which
//! quantifies how much coherence loss costs relative to pure NME states.
//!
//! Run with: `cargo run --release --example noisy_resource`
//!
//! # Expected output
//!
//! A seeded, deterministic table over Werner fidelity
//! `p ∈ {0.5, 0.7, 0.9, 1.0}` with exact `⟨Z⟩ ≈ +0.6216`: `f(ρ_W)`
//! rises from 0.625 to 1, the Theorem 1 bound `γ_optimal = 2/f − 1`
//! stays at or below the constructive `κ_inversion = (3/p − 1)/2`
//! (they meet only at `p = 1`), and every finite-shot estimate lands
//! within a few times `κ/√shots` of the exact value.

use nme_wire_cutting::entangle::{fully_entangled_fraction, werner};
use nme_wire_cutting::qpd::{estimate_allocated, Allocator};
use nme_wire_cutting::qsim::{Gate, Pauli};
use nme_wire_cutting::wirecut::mixed::{
    inversion_kappa, optimal_gamma_bell_diagonal, BellDiagonalCut,
};
use nme_wire_cutting::wirecut::{identity_distance, PreparedCut};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let w = Gate::Ry(0.9).matrix();
    let exact = nme_wire_cutting::wirecut::uncut_expectation(&w, Pauli::Z);
    println!("exact ⟨Z⟩: {exact:+.6}");
    println!();
    println!("    p     f(ρ_W)   γ_optimal   κ_inversion   estimate    |error|");
    println!("  -----------------------------------------------------------------");

    let shots = 8000u64;
    let mut rng = StdRng::seed_from_u64(13);
    for p in [0.5, 0.7, 0.9, 1.0] {
        let cut = BellDiagonalCut::werner(p);
        let fef = fully_entangled_fraction(&werner(p));
        let gamma = optimal_gamma_bell_diagonal(cut.weights);
        let kappa = inversion_kappa(cut.weights);

        // The inversion cut reconstructs the identity channel exactly even
        // though the resource is mixed:
        let dist = identity_distance(&cut);
        assert!(dist < 1e-9, "channel identity broken: {dist}");

        let prepared = PreparedCut::new(&cut, &w, Pauli::Z);
        let est = estimate_allocated(
            &prepared.spec,
            &prepared.samplers(),
            shots,
            Allocator::Proportional,
            &mut rng,
        );
        println!(
            "   {p:.2}    {fef:.4}    {gamma:.4}      {kappa:.4}      {est:+.6}   {:.6}",
            (est - exact).abs()
        );
    }

    println!();
    println!("κ_inversion > γ_optimal for p < 1: the Pauli-inversion construction");
    println!("is valid but suboptimal on mixed states — closing that gap is the");
    println!("open problem the paper lists as future work.");
}

//! Quickstart: cut a single wire with an NME resource state and estimate
//! an observable across the cut.
//!
//! The scenario of the paper's Figure 5: a qubit prepared in `W|0⟩` on
//! the *sender* device must be measured on the *receiver* device. The two
//! devices share pairs `|Φ_k⟩ = K(|00⟩ + k|11⟩)` that are only partially
//! entangled. Theorem 2 tells us how to trade those pairs for shots.
//!
//! Run with: `cargo run --release --example quickstart`
//!
//! # Expected output
//!
//! Deterministic (seeded) apart from nothing — every run prints exactly:
//! the exact uncut `⟨Z⟩ ≈ +0.3300`, the resource line
//! `k = 0.3333, f(Φk) = 0.800, optimal overhead γ = 1.5000`, the three
//! Theorem 2 QPD terms (two teleportation terms at `c = +0.6250`, one
//! measure-and-prepare term at `c = −0.2500`) whose weighted sum equals
//! the uncut value to machine precision, finite-shot estimates whose
//! error shrinks as shots grow from 250 to 20 000, a channel check
//! `‖Σ cᵢFᵢ − I‖∞ < 1e−12`, and the closing overhead line
//! `κ = 1.5 ⇒ ~κ² = 2.25× more shots than an uncut wire`.

use nme_wire_cutting::qpd::{estimate_allocated, Allocator};
use nme_wire_cutting::qsim::{Gate, Pauli};
use nme_wire_cutting::wirecut::{theory, NmeCut, PreparedCut, WireCut};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // The state travelling down the wire: W|0⟩ with W = Ry(1.2345).
    let w = Gate::Ry(1.2345).matrix();
    let exact = nme_wire_cutting::wirecut::uncut_expectation(&w, Pauli::Z);
    println!("exact ⟨Z⟩ of the uncut wire: {exact:+.6}");

    // A resource pair with entanglement level f(Φk) = 0.8 (k ≈ 0.5).
    let cut = NmeCut::from_overlap(0.8);
    println!(
        "resource: k = {:.4}, f(Φk) = {:.3}, optimal overhead γ = {:.4} (Corollary 1)",
        cut.k(),
        cut.resource().overlap(),
        theory::gamma_phi_k(cut.k()),
    );
    println!(
        "for comparison: no entanglement γ = {}, teleportation γ = 1",
        theory::GAMMA_NO_ENTANGLEMENT
    );

    // The three subcircuits of Figure 5, compiled for this input state and
    // observable. Their weighted expectations reproduce the uncut value
    // *exactly* (Theorem 2):
    let prepared = PreparedCut::new(&cut, &w, Pauli::Z);
    println!("\nQPD terms (Theorem 2):");
    for (spec, term) in prepared.spec.terms().iter().zip(prepared.terms.iter()) {
        println!(
            "  c = {:+.4}  {}  exact term ⟨Z⟩ = {:+.6}",
            spec.coefficient,
            term.label(),
            nme_wire_cutting::qpd::TermSampler::exact_expectation(term),
        );
    }
    println!(
        "Σ cᵢ·⟨Z⟩ᵢ = {:+.6}  (must equal the uncut value)",
        prepared.exact_value()
    );

    // Finite-shot estimation, shots split proportionally to |cᵢ| as in the
    // paper's experiment:
    let mut rng = StdRng::seed_from_u64(42);
    println!("\nfinite-shot estimates:");
    for shots in [250u64, 1000, 5000, 20000] {
        let est = estimate_allocated(
            &prepared.spec,
            &prepared.samplers(),
            shots,
            Allocator::Proportional,
            &mut rng,
        );
        println!(
            "  {shots:>6} shots → ⟨Z⟩ ≈ {est:+.6}   |error| = {:.6}",
            (est - exact).abs()
        );
    }

    // The channel-level guarantee behind all of this:
    let distance = nme_wire_cutting::wirecut::identity_distance(&cut);
    println!("\nchannel check: ‖Σ cᵢFᵢ − I‖∞ = {distance:.2e}");
    println!(
        "sampling overhead κ = {:.4} ⇒ ~κ² = {:.2}× more shots than an uncut wire",
        cut.kappa(),
        cut.kappa() * cut.kappa()
    );
}

//! The continuum between wire cutting and teleportation.
//!
//! The paper's headline message: pre-shared entanglement is a dial, not a
//! switch. Sweeping the resource parameter `k` from 0 (product state) to
//! 1 (Bell pair) moves the sampling overhead continuously from the
//! entanglement-free optimum γ = 3 down to teleportation's γ = 1, and
//! the measured estimation error follows.
//!
//! Run with: `cargo run --release --example teleport_continuum`
//!
//! # Expected output
//!
//! A seeded, deterministic 11-row table sweeping `k` from 0.00 to 1.00:
//! `f(Φk)` climbs from 0.5 to 1, `γ = 2/f − 1` descends from 3.0000 to
//! 1.0000, `pairs/sample` descends from 2 to 1, and the mean 4000-shot
//! estimation error over 40 Haar-random states decays roughly with γ
//! (from ≈ 0.04 at `k = 0` to ≈ 0.01 at `k = 1`), ending with the
//! endpoint note: `k = 0` is the entanglement-free optimum of Harada
//! et al., `k = 1` is plain teleportation.

use nme_wire_cutting::entangle::PhiK;
use nme_wire_cutting::qpd::{estimate_allocated, Allocator};
use nme_wire_cutting::qsim::{haar_unitary, Pauli};
use nme_wire_cutting::wirecut::{theory, NmeCut, PreparedCut, WireCut};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let shots = 4000u64;
    let states = 40usize;
    let mut rng = StdRng::seed_from_u64(2024);

    println!("shots per estimate: {shots}, Haar-random states averaged: {states}");
    println!();
    println!("    k     f(Φk)   γ=2/f−1   pairs/sample   mean |error|");
    println!("  ------------------------------------------------------");

    for i in 0..=10 {
        let k = i as f64 / 10.0;
        let phi = PhiK::new(k);
        let cut = NmeCut::new(k);

        // Average the estimation error over Haar-random input states.
        let mut total_err = 0.0;
        for _ in 0..states {
            let w = haar_unitary(2, &mut rng);
            let exact = nme_wire_cutting::wirecut::uncut_expectation(&w, Pauli::Z);
            let prepared = PreparedCut::new(&cut, &w, Pauli::Z);
            let est = estimate_allocated(
                &prepared.spec,
                &prepared.samplers(),
                shots,
                Allocator::Proportional,
                &mut rng,
            );
            total_err += (est - exact).abs();
        }
        let mean_err = total_err / states as f64;

        println!(
            "  {k:.2}   {:.4}   {:.4}      {:.4}        {mean_err:.5}",
            phi.overlap(),
            theory::gamma_phi_k(k),
            theory::pairs_per_sample(k),
        );
        // The construction attains the optimum at every k:
        assert!((cut.kappa() - theory::gamma_phi_k(k)).abs() < 1e-12);
    }

    println!();
    println!("endpoints: k=0 reproduces the optimal entanglement-free cut (γ=3,");
    println!("Harada et al.); k=1 is plain quantum teleportation (γ=1) — the two");
    println!("extremes the paper interpolates between.");
}

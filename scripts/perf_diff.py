#!/usr/bin/env python3
"""Compare two sets of criterion bench outputs and emit a markdown table.

Usage:
    perf_diff.py BASELINE_DIR HEAD_DIR [--threshold PCT]

Both directories hold the ``perf-baseline`` artifact files
(``<bench>.txt``), i.e. the raw ``cargo bench`` stdout.  Lines look like::

    sim/gate_kernels/h_mid_qubit/8     time:      1.23 µs  (9 × 128 iters)

The script matches benchmark labels across the two sets, converts every
time to nanoseconds, and prints a markdown report (regressions beyond
``--threshold`` percent flagged, biggest regression first) suitable for a
GitHub step summary or PR comment.  Exit status is always 0: the report
is advisory — CI runners are noisy, so regressions gate review, not the
merge.
"""

from __future__ import annotations

import argparse
import pathlib
import re
import sys

LINE = re.compile(
    r"^(?P<label>\S.*?)\s+time:\s+(?P<value>[0-9.]+)\s+(?P<unit>ns|µs|us|ms|s)\s+\("
)
UNIT_NS = {"ns": 1.0, "µs": 1e3, "us": 1e3, "ms": 1e6, "s": 1e9}


def parse_dir(directory: pathlib.Path) -> dict[str, float]:
    """All benchmark timings under ``directory``, label → nanoseconds."""
    timings: dict[str, float] = {}
    for path in sorted(directory.glob("*.txt")):
        for line in path.read_text(encoding="utf-8").splitlines():
            match = LINE.match(line)
            if match:
                nanos = float(match["value"]) * UNIT_NS[match["unit"]]
                timings[match["label"].strip()] = nanos
    return timings


def fmt_ns(nanos: float) -> str:
    if nanos < 1e3:
        return f"{nanos:.1f} ns"
    if nanos < 1e6:
        return f"{nanos / 1e3:.2f} µs"
    if nanos < 1e9:
        return f"{nanos / 1e6:.2f} ms"
    return f"{nanos / 1e9:.2f} s"


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", type=pathlib.Path)
    parser.add_argument("head", type=pathlib.Path)
    parser.add_argument(
        "--threshold",
        type=float,
        default=10.0,
        help="percent slowdown flagged as a regression (default 10)",
    )
    args = parser.parse_args()

    base = parse_dir(args.baseline)
    head = parse_dir(args.head)
    if not base:
        print("No baseline benchmarks found — nothing to compare against.")
        return 0
    if not head:
        print("No head benchmarks found — did the bench step run?")
        return 0

    shared = sorted(set(base) & set(head))
    rows = []
    for label in shared:
        delta = (head[label] - base[label]) / base[label] * 100.0
        rows.append((delta, label))
    rows.sort(reverse=True)

    regressions = [r for r in rows if r[0] > args.threshold]
    improvements = [r for r in rows if r[0] < -args.threshold]

    print("<!-- perf-diff -->")
    print("## Perf diff vs `main`")
    print()
    print(
        f"{len(shared)} shared benchmarks · "
        f"{len(regressions)} regression(s) and {len(improvements)} "
        f"improvement(s) beyond ±{args.threshold:g}%"
    )
    only_head = sorted(set(head) - set(base))
    only_base = sorted(set(base) - set(head))
    if only_head:
        print(f"· {len(only_head)} new benchmark(s) with no baseline")
    if only_base:
        print(f"· {len(only_base)} baseline benchmark(s) missing from this PR")
    print()
    print("| Benchmark | main | PR | Δ |")
    print("|---|---:|---:|---:|")
    for delta, label in rows:
        flag = " ⚠️" if delta > args.threshold else ""
        print(
            f"| `{label}` | {fmt_ns(base[label])} | {fmt_ns(head[label])} "
            f"| {delta:+.1f}%{flag} |"
        )
    if only_head:
        print()
        print("New benchmarks (no baseline on main):")
        for label in only_head:
            print(f"- `{label}` — {fmt_ns(head[label])}")
    return 0


if __name__ == "__main__":
    sys.exit(main())

//! Facade crate re-exporting the public API of the NME wire-cutting workspace.
#![forbid(unsafe_code)]
pub use entangle;
pub use experiments;
pub use qlinalg;
pub use qpd;
pub use qsample;
pub use qsim;
pub use wirecut;

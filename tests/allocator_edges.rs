//! Edge-case and property tests for the shot allocators: every allocator
//! in the crate must spend **exactly** the requested budget — no shot
//! lost, none invented — for arbitrary coefficient vectors, σ profiles,
//! and budgets (including budgets smaller than the term count), and the
//! degenerate-input failure modes must be loud and named.

use nme_wire_cutting::qpd::{
    largest_remainder, neyman_allocation, stochastic_allocation, Allocator, QpdSpec,
    SequentialAllocator,
};
use nme_wire_cutting::qsample::StreamRng;
use proptest::collection::vec as prop_vec;
use proptest::prelude::*;
use rand::Rng;

/// Arbitrary spec: 1–12 terms with signed coefficients bounded away from
/// an all-zero vector (largest_remainder rejects zero weight vectors; a
/// spec whose κ is zero is not a QPD).
fn arb_spec() -> impl Strategy<Value = QpdSpec> {
    prop_vec(-4.0f64..4.0, 1..12)
        .prop_filter("need nonzero kappa", |cs| {
            cs.iter().map(|c| c.abs()).sum::<f64>() > 1e-6
        })
        .prop_map(|cs| {
            let parts: Vec<(f64, &str, f64)> = cs
                .iter()
                .enumerate()
                .map(|(i, &c)| (c, "t", (i % 2) as f64))
                .collect();
            QpdSpec::from_parts(&parts)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn proportional_spends_exactly_the_budget(spec in arb_spec(), total in 0u64..100_000) {
        let alloc = Allocator::Proportional.allocate(&spec, total);
        prop_assert_eq!(alloc.len(), spec.len());
        prop_assert_eq!(alloc.iter().sum::<u64>(), total);
    }

    #[test]
    fn uniform_spends_exactly_the_budget(spec in arb_spec(), total in 0u64..100_000) {
        let alloc = Allocator::Uniform.allocate(&spec, total);
        prop_assert_eq!(alloc.len(), spec.len());
        prop_assert_eq!(alloc.iter().sum::<u64>(), total);
    }

    #[test]
    fn neyman_spends_exactly_the_budget(
        spec in arb_spec(),
        total in 0u64..100_000,
        sigma_seed in 0u64..1_000,
    ) {
        // Arbitrary σ profile, including exact zeros on some terms.
        let sigmas: Vec<f64> = (0..spec.len())
            .map(|i| if (sigma_seed + i as u64).is_multiple_of(3) {
                0.0
            } else {
                ((sigma_seed * 31 + i as u64 * 7) % 100) as f64 / 50.0
            })
            .collect();
        let alloc = neyman_allocation(&spec, &sigmas, total);
        prop_assert_eq!(alloc.len(), spec.len());
        prop_assert_eq!(alloc.iter().sum::<u64>(), total);
    }

    #[test]
    fn stochastic_spends_exactly_the_budget(
        spec in arb_spec(),
        total in 0u64..100_000,
        seed in 0u64..1_000,
    ) {
        let mut rng = StreamRng::new(seed, 0xA110C);
        let alloc = stochastic_allocation(&spec, total, &mut rng);
        prop_assert_eq!(alloc.len(), spec.len());
        prop_assert_eq!(alloc.iter().sum::<u64>(), total);
    }

    #[test]
    fn sequential_spends_exactly_the_budget_every_batch(
        spec in arb_spec(),
        batch in 0u64..10_000,
        obs_seed in 0u64..1_000,
    ) {
        let mut seq = SequentialAllocator::new(spec.len());
        // Feed a couple of rounds of synthetic observations so the σ̂
        // profile is arbitrary (some terms pinned at mean ±1 → σ̂ small,
        // some unseen → σ̂ = 1).
        let mut rng = StreamRng::new(obs_seed, 0x5E0);
        for term in 0..spec.len() {
            if rng.gen::<f64>() < 0.7 {
                let shots = 1 + (rng.gen::<u64>() % 50);
                let mean = 2.0 * rng.gen::<f64>() - 1.0;
                seq.record(term, mean * shots as f64, shots);
            }
        }
        let alloc = seq.next_allocation(&spec, batch);
        prop_assert_eq!(alloc.len(), spec.len());
        prop_assert_eq!(alloc.iter().sum::<u64>(), batch);
    }

    #[test]
    fn largest_remainder_spends_exactly_the_budget(
        weights in prop_vec(0.0f64..10.0, 1..12)
            .prop_filter("need nonzero mass", |ws| ws.iter().sum::<f64>() > 1e-9),
        total in 0u64..100_000,
    ) {
        let alloc = largest_remainder(&weights, total);
        prop_assert_eq!(alloc.iter().sum::<u64>(), total);
    }
}

// ---- budgets smaller than the term count ----------------------------

#[test]
fn neyman_with_budget_below_term_count_still_sums_exactly() {
    let spec = QpdSpec::from_parts(&[
        (0.5, "a", 0.0),
        (-0.25, "b", 1.0),
        (0.5, "c", 0.0),
        (0.25, "d", 1.0),
        (-0.5, "e", 0.0),
    ]);
    let sigmas = [1.0, 0.2, 0.0, 0.9, 0.4];
    for total in 0..5u64 {
        let alloc = neyman_allocation(&spec, &sigmas, total);
        assert_eq!(alloc.iter().sum::<u64>(), total, "total {total}: {alloc:?}");
    }
}

#[test]
fn proportional_with_budget_below_term_count_still_sums_exactly() {
    let spec = QpdSpec::from_parts(&[(0.7, "a", 0.0), (-0.2, "b", 1.0), (0.1, "c", 0.0)]);
    for total in 0..3u64 {
        let alloc = Allocator::Proportional.allocate(&spec, total);
        assert_eq!(alloc.iter().sum::<u64>(), total);
    }
}

// ---- loud, named failure modes (the fixed panics) -------------------

#[test]
#[should_panic(expected = "allocation weights must be finite and non-negative")]
fn largest_remainder_names_a_nan_weight() {
    largest_remainder(&[0.5, f64::NAN, 0.25], 100);
}

#[test]
#[should_panic(expected = "allocation weights must be finite and non-negative")]
fn largest_remainder_names_an_infinite_weight() {
    largest_remainder(&[0.5, f64::INFINITY], 100);
}

#[test]
#[should_panic(expected = "zero weight vector")]
fn largest_remainder_rejects_all_zero_weights() {
    largest_remainder(&[0.0, 0.0, 0.0], 100);
}

#[test]
#[should_panic(expected = "per-term σ must be finite and non-negative")]
fn neyman_names_an_infinite_sigma() {
    let spec = QpdSpec::from_parts(&[(0.5, "a", 0.0), (0.5, "b", 1.0)]);
    neyman_allocation(&spec, &[f64::INFINITY, 1.0], 100);
}

#[test]
#[should_panic(expected = "cannot allocate shots across an empty QPD term list")]
fn largest_remainder_rejects_empty_weights() {
    largest_remainder(&[], 100);
}

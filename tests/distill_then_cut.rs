//! Statistical and closed-form suite for the **distill-then-cut
//! pipeline** (E16): the DEJMPS recurrence fixed point and fidelity
//! monotonicity, the `κ_eff(p, 0) = κ_inversion(p)` anchoring, the
//! `p = 1` endpoint where distillation is a no-op and
//! `κ_eff = γ = 1`, a pinned `p` where a positive depth beats direct
//! inversion cutting (and even the raw Theorem 1 bound), and 5σ
//! Wilson-band agreement between the batched E16 sampler path and the
//! exact expectations.

use nme_wire_cutting::entangle::{dejmps_round, DistillationSchedule, RecurrenceProtocol};
use nme_wire_cutting::experiments::distill_cut::{frontier, run, DistillCutConfig};
use nme_wire_cutting::wirecut::mixed::{
    inversion_kappa, rounds_to_close_gap, BellDiagonalCut, DistillThenCut,
};

fn werner_weights(p: f64) -> [f64; 4] {
    let rest = (1.0 - p) / 4.0;
    [p + rest, rest, rest, rest]
}

/// A sweep sized so per-point standard errors resolve κ̂ to a few
/// percent, on a coarse (p, m) grid.
fn statistical_config() -> DistillCutConfig {
    DistillCutConfig {
        p_steps: 7,
        max_rounds: 3,
        shots: 2048,
        num_states: 8,
        repetitions: 48,
        seed: 1606,
        threads: 0,
        ..Default::default()
    }
}

#[test]
fn dejmps_fixed_point_is_the_bell_state() {
    let (q, s) = dejmps_round([1.0, 0.0, 0.0, 0.0]);
    assert_eq!(q, [1.0, 0.0, 0.0, 0.0]);
    assert!((s - 1.0).abs() < 1e-15);
    // And it is attracting from every Werner state above the boundary.
    for &p in &[0.4, 0.6, 0.8] {
        let schedule = DistillationSchedule::new(werner_weights(p), 10, RecurrenceProtocol::Dejmps);
        assert!(
            schedule.fidelity() > 0.999,
            "not attracted to Φ⁺ from p={p}: {}",
            schedule.fidelity()
        );
    }
}

#[test]
fn dejmps_fidelity_is_monotone_from_werner_inputs() {
    for &p in &[0.45, 0.6, 0.75, 0.9] {
        let schedule = DistillationSchedule::new(werner_weights(p), 6, RecurrenceProtocol::Dejmps);
        let fs = schedule.fidelities();
        for (i, w) in fs.windows(2).enumerate() {
            assert!(
                w[1] > w[0] - 1e-12,
                "fidelity dropped at p={p} round {}: {fs:?}",
                i + 1
            );
        }
    }
}

#[test]
fn zero_rounds_recovers_the_inversion_cut_exactly() {
    for &p in &[0.35, 0.5, 0.7, 0.9, 1.0] {
        let pipeline = DistillThenCut::werner(p, 0);
        let kappa_inv = inversion_kappa(BellDiagonalCut::werner(p).weights);
        assert!(
            (pipeline.kappa_eff() - kappa_inv).abs() < 1e-12,
            "κ_eff(p={p}, 0) = {} vs κ_inv = {kappa_inv}",
            pipeline.kappa_eff()
        );
        assert!((kappa_inv - (3.0 / p - 1.0) / 2.0).abs() < 1e-10);
        assert!((pipeline.kappa_pair() - kappa_inv).abs() < 1e-12);
    }
}

#[test]
fn pure_endpoint_distillation_is_a_noop() {
    // At p = 1 the resource is already |Φ⁺⟩ — the DEJMPS fixed point —
    // so every depth leaves the weights untouched, succeeds with
    // certainty, and κ_eff = γ = 1 (plain teleportation).
    for m in 0..=4 {
        let pipeline = DistillThenCut::werner(1.0, m);
        assert_eq!(pipeline.distilled_weights(), [1.0, 0.0, 0.0, 0.0]);
        assert!((pipeline.success_probability() - 1.0).abs() < 1e-15);
        assert!((pipeline.kappa_eff() - 1.0).abs() < 1e-12);
        assert!((pipeline.gamma_raw() - 1.0).abs() < 1e-12);
        assert!((pipeline.gamma_distilled() - 1.0).abs() < 1e-12);
    }
}

#[test]
fn depth_one_beats_direct_inversion_at_p_08() {
    // The acceptance pin: a p where some m > 0 beats direct inversion.
    // At p = 0.8, one DEJMPS round gives κ_eff ≈ 1.294 against
    // κ_inv = 1.375 — and it even undercuts the raw Theorem 1 bound
    // γ(0.8) = 23/17 ≈ 1.353, which no single-copy scheme can do.
    let p = 0.8;
    let pipeline = DistillThenCut::werner(p, 1);
    let kappa_inv = inversion_kappa(BellDiagonalCut::werner(p).weights);
    assert!((kappa_inv - 1.375).abs() < 1e-12);
    assert!(
        pipeline.kappa_eff() < kappa_inv,
        "κ_eff(0.8, 1) = {} did not beat κ_inv = {kappa_inv}",
        pipeline.kappa_eff()
    );
    let gamma = pipeline.gamma_raw();
    assert!((gamma - 23.0 / 17.0).abs() < 1e-12);
    assert!(
        pipeline.kappa_eff() < gamma,
        "κ_eff(0.8, 1) = {} did not close the γ gap ({gamma})",
        pipeline.kappa_eff()
    );
    assert_eq!(
        rounds_to_close_gap(werner_weights(p), 4, RecurrenceProtocol::Dejmps),
        Some(1)
    );
}

#[test]
fn boundary_p_never_improves() {
    // f = ½ is invariant under the recurrence, so at p = ⅓ every depth
    // is pure loss on both axes.
    let kappa_inv = inversion_kappa(BellDiagonalCut::werner(1.0 / 3.0).weights);
    for m in 1..=4 {
        let pipeline = DistillThenCut::werner(1.0 / 3.0, m);
        assert!((pipeline.fidelity() - 0.5).abs() < 1e-12);
        assert!(pipeline.kappa_eff() >= kappa_inv - 1e-9);
        assert!(pipeline.kappa_pair() > kappa_inv);
    }
    assert_eq!(
        rounds_to_close_gap(werner_weights(1.0 / 3.0), 6, RecurrenceProtocol::Dejmps),
        None
    );
}

#[test]
fn kappa_hat_matches_kappa_eff_within_five_sigma() {
    // The batched E16 sampler path (one binomial per term allocation at
    // the distilled weights) must reproduce the closed-form per-sample
    // overhead across the whole (p, m) grid.
    let t = run(&statistical_config());
    for row in t.rows() {
        let (p, m, kappa_eff, kappa_hat, se) = (row[0], row[1], row[8], row[10], row[11]);
        let tol = 5.0 * se.max(0.01 * kappa_eff);
        assert!(
            (kappa_hat - kappa_eff).abs() < tol,
            "κ̂({p}, {m}) = {kappa_hat} departs from κ_eff = {kappa_eff} by more than 5σ ({tol})"
        );
    }
}

#[test]
fn wilson_bands_cover_at_five_sigma() {
    let t = run(&statistical_config());
    for row in t.rows() {
        // At 5σ essentially every estimate must fall inside its band...
        assert!(
            row[14] > 0.99,
            "band coverage {} at p={} m={} too low for 5σ",
            row[14],
            row[0],
            row[1]
        );
        // ...the band must be informative even at the noisiest point...
        assert!(
            row[13] < 1.5,
            "band halfwidth {} at p={} m={} is vacuous",
            row[13],
            row[0],
            row[1]
        );
        // ...and the mean |error| sits well inside it.
        assert!(
            row[12] < row[13],
            "mean error {} exceeds its band {} at p={} m={}",
            row[12],
            row[13],
            row[0],
            row[1]
        );
    }
}

#[test]
fn map_exposes_both_findings() {
    // The measured map's two headline structures: (a) per-sample κ_eff
    // closes the raw γ gap for interior p at finite depth; (b) the
    // raw-pair axis never rewards a round on Werner inputs.
    let f = frontier(&statistical_config());
    let interior_closers = f
        .rows()
        .iter()
        .filter(|r| r[6] >= 1.0) // closes_gap_m
        .count();
    assert!(
        interior_closers >= 4,
        "only {interior_closers} grid points close the γ gap"
    );
    for r in f.rows() {
        assert_eq!(r[7] as i64, 0, "pair axis rewarded m > 0 at p = {}", r[0]);
    }
    // Depth needed is monotone non-increasing in p once the gap closes.
    let depths: Vec<f64> = f
        .rows()
        .iter()
        .filter(|r| r[6] >= 1.0)
        .map(|r| r[6])
        .collect();
    for w in depths.windows(2) {
        assert!(
            w[1] <= w[0] + 1e-12,
            "gap-closing depth not monotone: {depths:?}"
        );
    }
}

#[test]
fn success_probability_and_pair_bill_are_consistent() {
    let t = run(&DistillCutConfig {
        p_steps: 4,
        max_rounds: 3,
        num_states: 2,
        repetitions: 4,
        shots: 256,
        ..Default::default()
    });
    for row in t.rows() {
        let (m, s, pairs) = (row[1] as u32, row[3], row[4]);
        assert!(s > 0.0 && s <= 1.0 + 1e-12);
        // Expected pairs ≥ 2^m, equality iff every round is certain; and
        // the chain bound pairs ≥ 2^m / Π sⱼ ≥ 2^m·(chain success)⁻¹ is
        // loose only through per-round independence.
        let floor = f64::from(2u32.pow(m));
        assert!(pairs >= floor - 1e-9, "pairs {pairs} below 2^{m}");
        assert!(
            pairs <= floor / s + 1e-9,
            "pairs {pairs} above 2^{m}/success ({})",
            floor / s
        );
    }
}

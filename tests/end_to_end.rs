//! Cross-crate integration tests: the full paper pipeline exercised
//! through the public facade, at reduced scale but with the real code
//! paths (Haar workloads → Theorem 2 circuits → compiled samplers →
//! proportional sweep → aggregation).

use nme_wire_cutting::experiments::fig6::{run as run_fig6, Fig6Config};
use nme_wire_cutting::experiments::{tables, teleport_channel};
use nme_wire_cutting::qpd::{estimate_allocated, Allocator};
use nme_wire_cutting::qsim::{haar_unitary, Pauli};
use nme_wire_cutting::wirecut::{
    identity_distance, theory, HaradaCut, NmeCut, PengCut, PreparedCut, TeleportationPassthrough,
    WireCut,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn figure6_pipeline_reproduces_paper_shape() {
    let cfg = Fig6Config {
        num_states: 150,
        shot_checkpoints: vec![500, 1000, 2000, 4000],
        overlaps: vec![0.5, 0.7, 0.9, 1.0],
        seed: 99,
        threads: 4,
    };
    let res = run_fig6(&cfg);
    // Shape 1: error decreases with shots for every entanglement level.
    for row in &res.mean_abs_error {
        for w in row.windows(2) {
            assert!(w[1] < w[0] * 1.05, "error not (weakly) decreasing: {row:?}");
        }
    }
    // Shape 2: error decreases with entanglement at every budget.
    for c in 0..cfg.shot_checkpoints.len() {
        for o in 0..cfg.overlaps.len() - 1 {
            assert!(
                res.mean_abs_error[o][c] > res.mean_abs_error[o + 1][c] * 0.8,
                "ordering violated at checkpoint {c}: f={} err={} vs f={} err={}",
                cfg.overlaps[o],
                res.mean_abs_error[o][c],
                cfg.overlaps[o + 1],
                res.mean_abs_error[o + 1][c]
            );
        }
    }
    // Shape 3: the f=0.5 / f=1.0 error ratio reflects κ = 3 vs 1.
    let last = cfg.shot_checkpoints.len() - 1;
    let ratio = res.mean_abs_error[0][last] / res.mean_abs_error[3][last];
    assert!(
        ratio > 1.8 && ratio < 5.5,
        "κ-driven error ratio off: {ratio}"
    );
    // Shape 4: 1/√N scaling — quadrupling shots roughly halves the error.
    let scale = res.mean_abs_error[0][0] / res.mean_abs_error[0][2];
    assert!(scale > 1.4 && scale < 3.0, "1/√N scaling off: {scale}");
}

#[test]
fn all_cut_families_agree_on_a_common_workload() {
    let mut rng = StdRng::seed_from_u64(5);
    let w = haar_unitary(2, &mut rng);
    let exact = nme_wire_cutting::wirecut::uncut_expectation(&w, Pauli::Z);
    let cuts: Vec<Box<dyn WireCut>> = vec![
        Box::new(PengCut),
        Box::new(HaradaCut),
        Box::new(NmeCut::new(0.25)),
        Box::new(NmeCut::new(0.75)),
        Box::new(TeleportationPassthrough),
    ];
    for cut in &cuts {
        let prepared = PreparedCut::new(cut.as_ref(), &w, Pauli::Z);
        assert!(
            (prepared.exact_value() - exact).abs() < 1e-8,
            "{} disagrees: {} vs {exact}",
            cut.name(),
            prepared.exact_value()
        );
        assert!(
            identity_distance(cut.as_ref()) < 1e-8,
            "{} channel broken",
            cut.name()
        );
    }
}

#[test]
fn every_qpd_term_is_a_physical_channel() {
    // Each Fᵢ must be CPTP (an implementable LOCC operation); only the
    // signed *combination* is unphysical-looking. Verified via Choi
    // positivity for all cut families.
    let cuts: Vec<Box<dyn WireCut>> = vec![
        Box::new(PengCut),
        Box::new(HaradaCut),
        Box::new(NmeCut::new(0.3)),
        Box::new(NmeCut::new(1.0)),
    ];
    for cut in &cuts {
        for term in cut.terms() {
            let ch = nme_wire_cutting::wirecut::term_channel(&term);
            assert!(
                ch.is_cptp(1e-8),
                "{} term {} is not CPTP",
                cut.name(),
                term.label
            );
        }
    }
    // The reconstructed channel is the identity — also CPTP.
    let rec = nme_wire_cutting::wirecut::reconstructed_channel(&NmeCut::new(0.3));
    assert!(rec.is_cptp(1e-8));
}

#[test]
fn overhead_hierarchy_is_strict() {
    // Peng (4) > Harada (3) = NME(k=0) > NME(k=0.5) > NME(k=1) = tele (1).
    let peng = PengCut.kappa();
    let harada = HaradaCut.kappa();
    let nme0 = NmeCut::new(0.0).kappa();
    let nme_half = NmeCut::new(0.5).kappa();
    let nme1 = NmeCut::new(1.0).kappa();
    let tele = TeleportationPassthrough.kappa();
    assert!(peng > harada);
    assert!((harada - nme0).abs() < 1e-12);
    assert!(nme0 > nme_half);
    assert!(nme_half > nme1);
    assert!((nme1 - tele).abs() < 1e-12);
    assert!((nme_half - theory::gamma_phi_k(0.5)).abs() < 1e-12);
}

#[test]
fn closed_form_tables_are_internally_consistent() {
    let t = tables::overlap_table(11);
    for row in t.rows() {
        assert!((row[1] - row[2]).abs() < 1e-9);
        assert!((row[1] - row[3]).abs() < 1e-9);
    }
    let e = tables::endpoints_table();
    for row in e.rows() {
        assert!((row[1] - row[2]).abs() < 1e-10);
        assert!(row[3] < 1e-8);
    }
}

#[test]
fn teleportation_tomography_validates_eq22_on_grid() {
    for row in teleport_channel::run(7) {
        assert!(row.channel_distance < 1e-9, "Eq. 22 off at k={}", row.k);
        assert!(
            (row.average_fidelity - theory::average_teleportation_fidelity(row.k)).abs() < 1e-9
        );
    }
}

#[test]
fn fixed_seed_full_estimate_is_reproducible() {
    let mut rng1 = StdRng::seed_from_u64(123);
    let mut rng2 = StdRng::seed_from_u64(123);
    let w = haar_unitary(2, &mut rng1);
    let w2 = haar_unitary(2, &mut rng2);
    assert!(w.approx_eq(&w2, 0.0), "Haar sampling not reproducible");
    let prepared = PreparedCut::new(&NmeCut::new(0.4), &w, Pauli::Z);
    let a = estimate_allocated(
        &prepared.spec,
        &prepared.samplers(),
        2000,
        Allocator::Proportional,
        &mut rng1,
    );
    let b = estimate_allocated(
        &prepared.spec,
        &prepared.samplers(),
        2000,
        Allocator::Proportional,
        &mut rng2,
    );
    assert_eq!(a, b, "estimation not reproducible under fixed seeds");
}

#[test]
fn accuracy_budget_follows_kappa_squared_law() {
    // Theorem 1's operational meaning: to match the error of the
    // teleportation baseline at N shots, the k=0 cut needs ~κ²N. Verify
    // the variance ratio empirically at matched budgets.
    let mut rng = StdRng::seed_from_u64(31);
    let w = haar_unitary(2, &mut rng);
    let reps = 150;
    let var_of = |k: f64, shots: u64, rng: &mut StdRng| -> f64 {
        let prepared = PreparedCut::new(&NmeCut::new(k), &w, Pauli::Z);
        let xs: Vec<f64> = (0..reps)
            .map(|_| {
                estimate_allocated(
                    &prepared.spec,
                    &prepared.samplers(),
                    shots,
                    Allocator::Proportional,
                    rng,
                )
            })
            .collect();
        let m = xs.iter().sum::<f64>() / reps as f64;
        xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (reps - 1) as f64
    };
    // κ² = 9 at k=0: nine times the budget should land near the baseline.
    let v_cut = var_of(0.0, 9 * 400, &mut rng);
    let v_base = var_of(1.0, 400, &mut rng);
    let ratio = v_cut / v_base;
    assert!(
        ratio > 0.4 && ratio < 2.5,
        "κ² budget law violated: matched-budget variance ratio {ratio}"
    );
}

//! Differential suite for the **contracted fragment-block backend**
//! (`wirecut::contract`) against the pristine monolithic stitching
//! reference (`CompiledPlan::compile_monolithic`), pinning ISSUE 9's
//! acceptance criteria:
//!
//! * on 20+ randomized circuits (n = 3..6, 1–4 cuts, both NME and
//!   joint-MUB groups) the two backends agree **per term** to 1e−8 and
//!   the contracted decomposition equals the uncut statevector to 1e−8;
//! * sampled estimates through the contracted path land inside the 5σ
//!   Wilson band;
//! * a 6-cut plan from `random_unitary_circuit` compiles and estimates
//!   through contraction (where monolithic stitching blows up);
//! * service results on contracted plans stay byte-identical across
//!   thread counts {1, 2, 7};
//! * the `fragments_by_width` merge post-pass eliminates the avoidable
//!   repeated cut (κ reduction pinned on the regression circuit).

use nme_wire_cutting::experiments::plan_cut::tractable_random_circuit;
use nme_wire_cutting::experiments::stats::qpd_wilson_band;
use nme_wire_cutting::qpd::{estimate_allocated, Allocator};
use nme_wire_cutting::qsim::{greedy_fragments, random_unitary_circuit, Circuit, PauliString};
use nme_wire_cutting::wirecut::service::{CutService, EstimationJob};
use nme_wire_cutting::wirecut::{
    contraction_ineligibility, supports_contraction, uncut_plan_expectation, CompiledPlan,
    CutPlanner, FragmentBlocks, PlanBackend, Protocol, MAX_INCOMING, MAX_JOINT_WIRES,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The randomized workload grid: ≥ 20 circuits spanning widths 3–6,
/// budgets strictly below the width, and overlaps on both sides of the
/// κ crossover (so both NME and joint-MUB groups are exercised), with
/// 1–4 cuts per plan.
fn workloads() -> Vec<(usize, usize, f64, u64)> {
    // (num_qubits, width_budget, overlap, seed)
    let mut w = Vec::new();
    for (i, &(n, budget)) in [(3, 2), (4, 3), (4, 2), (5, 4), (6, 5)].iter().enumerate() {
        for (j, &f) in [0.52, 0.7, 0.85, 1.0].iter().enumerate() {
            w.push((n, budget, f, 3000 + (i * 4 + j) as u64));
        }
    }
    assert!(w.len() >= 20);
    w
}

#[test]
fn contracted_terms_match_monolithic_and_uncut_on_randomized_circuits() {
    let shots = 2048u64;
    let mut saw_joint = false;
    let mut saw_multi_cut = false;
    for (n, budget, f, seed) in workloads() {
        let planner = CutPlanner::new(budget).with_overlap(f);
        let mut rng = StdRng::seed_from_u64(seed);
        let (circuit, plan) = tractable_random_circuit(n, 5, &planner, 4, &mut rng);
        assert!(
            supports_contraction(&plan),
            "n={n} f={f} seed={seed}: unitary plan must contract"
        );
        saw_joint |= plan.groups.iter().any(|g| g.protocol == Protocol::JointMub);
        saw_multi_cut |= plan.num_cuts() >= 2;

        let observable = PauliString::from_label(&"Z".repeat(n));
        let uncut = uncut_plan_expectation(&circuit, &observable);
        let contracted = CompiledPlan::compile_contracted(&plan, &observable);
        let monolithic = CompiledPlan::compile_monolithic(&plan, &observable);
        assert_eq!(contracted.backend(), PlanBackend::Contracted);
        assert_eq!(monolithic.backend(), PlanBackend::Monolithic);

        // Per-term differential: the tensor contraction reproduces every
        // stitched term expectation, in the same odometer order.
        let ct = contracted.exact_terms();
        let mt = monolithic.exact_terms();
        assert_eq!(ct.len(), mt.len(), "n={n} f={f} seed={seed}");
        for (i, (c, m)) in ct.iter().zip(mt.iter()).enumerate() {
            assert!(
                (c - m).abs() < 1e-8,
                "n={n} f={f} seed={seed} term {i}: contracted {c} vs monolithic {m}"
            );
        }

        // The decomposition is an identity, not an approximation.
        assert!(
            (contracted.exact_value() - uncut).abs() < 1e-8,
            "n={n} f={f} seed={seed}: exact {} vs uncut {uncut}",
            contracted.exact_value()
        );
        contracted.verify(1e-8).unwrap();

        // A sampled estimate through the contracted path lands inside
        // the 5σ Wilson band.
        let band = qpd_wilson_band(&contracted.spec, &contracted.exact_terms(), shots, 5.0);
        let est = estimate_allocated(
            &contracted.spec,
            &contracted.samplers(),
            shots,
            Allocator::Proportional,
            &mut rng,
        );
        assert!(
            (est - uncut).abs() <= band,
            "n={n} f={f} seed={seed}: estimate {est} outside 5σ band {band} of {uncut}"
        );
    }
    assert!(saw_joint, "grid never produced a joint-MUB group");
    assert!(saw_multi_cut, "grid never produced a multi-cut plan");
}

#[test]
fn six_cut_plan_compiles_and_estimates_through_contraction() {
    // The acceptance bar: a ≥6-cut plan from `random_unitary_circuit`
    // compiles through the contracted path (Σ 6^incoming fragment
    // variants) where the monolithic path would stitch Π terms ≥ 3^6
    // monolithic circuits, and its estimate is 5σ-correct. The cut
    // count is banded to 6..=8 — spec evaluation is Θ(Π terms) even
    // contracted (one frontier contraction per term), and the first
    // unbanded draw is a 12-cut/531441-term monster that alone costs
    // minutes in debug builds.
    let planner = CutPlanner::new(3).with_overlap(0.9);
    let mut found = None;
    for seed in 0..200u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let circuit = random_unitary_circuit(7, 14, &mut rng);
        let plan = planner.plan(&circuit);
        if (6..=8).contains(&plan.num_cuts()) && supports_contraction(&plan) {
            found = Some((circuit, plan, rng));
            break;
        }
    }
    let (circuit, plan, mut rng) = found.expect("no ≥6-cut tractable plan in 200 draws");
    let observable = PauliString::from_label(&"Z".repeat(7));
    let uncut = uncut_plan_expectation(&circuit, &observable);
    let compiled = CompiledPlan::compile(&plan, &observable);
    assert_eq!(compiled.backend(), PlanBackend::Contracted);
    assert!(compiled.spec.len() >= 3usize.pow(6));
    // Compilation cost is Σ variants, far below the Π terms of the spec.
    let variants: usize = compiled
        .fragment_summaries()
        .iter()
        .map(|s| s.variants)
        .sum();
    assert!(
        variants < compiled.spec.len(),
        "contracted compiled {variants} circuits ≥ {} product terms",
        compiled.spec.len()
    );
    assert!(
        (compiled.exact_value() - uncut).abs() < 1e-8,
        "6-cut exact {} vs uncut {uncut}",
        compiled.exact_value()
    );
    // The prefix-cached sweep must have saved frontier work over a
    // cache-disabled evaluation (the ≥5× bar is pinned on the
    // deterministic ladder shape below; random plans with fat groups
    // resume shallower).
    let backend = compiled.backend_report();
    assert!(
        backend.prefix_hits > 0,
        "sweep never resumed from the cache"
    );
    assert!(
        backend.frontier_ops < backend.frontier_ops_uncached,
        "prefix cache saved nothing: {} vs {}",
        backend.frontier_ops,
        backend.frontier_ops_uncached
    );
    let shots = 1 << 16;
    let band = qpd_wilson_band(&compiled.spec, &compiled.exact_terms(), shots, 5.0);
    let est = estimate_allocated(
        &compiled.spec,
        &compiled.samplers(),
        shots,
        Allocator::Proportional,
        &mut rng,
    );
    assert!(
        (est - uncut).abs() <= band,
        "6-cut estimate {est} outside 5σ band {band} of {uncut} (κ = {:.2})",
        compiled.report().kappa
    );
}

#[test]
fn contracted_service_results_are_byte_identical_across_threads() {
    // Unitary circuits ⇒ every job rides the contracted backend; the
    // service determinism contract (content-addressed RNG lanes) must
    // hold bit-for-bit at any thread count, cold or warm.
    let mk_jobs = || -> Vec<EstimationJob> {
        let mut jobs = Vec::new();
        for seed in 0..3u64 {
            let mut ladder = Circuit::new(4, 0);
            ladder.ry(0.4, 0).cx(0, 1).cx(1, 2).cx(2, 3);
            jobs.push(
                EstimationJob::new(ladder, PauliString::from_label("ZZZZ"), 1200, seed)
                    .with_batches(3),
            );
            let mut rng = StdRng::seed_from_u64(40 + seed);
            let planner = CutPlanner::new(2).with_overlap(0.8);
            let (random, _) = tractable_random_circuit(4, 5, &planner, 3, &mut rng);
            jobs.push(
                EstimationJob::new(random, PauliString::from_label("ZZZZ"), 1200, seed)
                    .with_batches(3),
            );
        }
        jobs
    };
    let jobs = mk_jobs();
    let service = || CutService::new(CutPlanner::new(2).with_overlap(0.8));
    let reference: Vec<_> = jobs.iter().map(|j| service().run_job(j)).collect();
    for r in &reference {
        assert_eq!(r.backend, PlanBackend::Contracted);
        assert!(r.compiled_units > 0);
    }
    let shared = service();
    for threads in [1usize, 2, 7] {
        let fleet = shared.run_jobs(&jobs, threads);
        for (r, f) in reference.iter().zip(fleet.iter()) {
            assert_eq!(
                r.estimate.to_bits(),
                f.estimate.to_bits(),
                "estimate differs at {threads} threads"
            );
            assert_eq!(r.updates, f.updates, "partials differ at {threads} threads");
            assert_eq!(r.allocation, f.allocation);
            assert_eq!(r.plan_key, f.plan_key);
            assert_eq!(r.backend, f.backend);
        }
    }
}

#[test]
fn merge_pass_reduces_cut_overhead_on_the_regression_circuit() {
    // Greedy fragmentation alone splits wires 0/1 across fragments
    // {0,1} | {2,3} | {0,1}: two avoidable cuts, κ = γ² = 2.25 at
    // f = 0.8. The merge post-pass reunites the disjoint outer
    // fragments, so the planner sees two fragments and **zero** cuts.
    let mut c = Circuit::new(4, 0);
    c.ry(0.3, 0);
    c.cx(0, 1);
    c.cx(2, 3);
    c.cx(0, 1);
    assert_eq!(
        greedy_fragments(&c, 2).len(),
        3,
        "greedy baseline regressed; the merge pin below is vacuous"
    );
    let plan = CutPlanner::new(2).with_overlap(0.8).plan(&c);
    assert_eq!(plan.fragments.len(), 2);
    assert_eq!(plan.num_cuts(), 0, "merge pass left avoidable cuts");
    assert!((plan.kappa() - 1.0).abs() < 1e-12);
    // The merged plan still evaluates correctly end to end.
    let obs = PauliString::from_label("ZZZZ");
    let compiled = CompiledPlan::compile(&plan, &obs);
    assert!((compiled.exact_value() - uncut_plan_expectation(&c, &obs)).abs() < 1e-10);
}

/// The CX ladder on `cuts + 2` qubits at width budget 2: exactly `cuts`
/// single-wire NME cuts in a chain of two-wire fragments — the
/// deterministic shape the prefix-cache payoff is pinned on.
fn cx_ladder(cuts: usize) -> Circuit {
    let n = cuts + 2;
    let mut c = Circuit::new(n, 0);
    c.ry(0.4, 0);
    for q in 0..n - 1 {
        c.cx(q, q + 1);
    }
    c
}

#[test]
fn six_cut_ladder_prefix_cache_saves_5x_frontier_ops() {
    // ISSUE 10's acceptance bar: on a 6-cut plan's full odometer sweep
    // (3^6 = 729 product terms), the prefix cache must perform ≥ 5×
    // fewer frontier matrix multiplications than cache-disabled
    // evaluation, as reported by the BackendReport counters. On the
    // ladder the resumes are maximally deep (single-wire groups), so
    // the amortized cost per term approaches a single fused dot.
    let circuit = cx_ladder(6);
    let plan = CutPlanner::new(2).with_overlap(0.8).plan(&circuit);
    assert_eq!(plan.num_cuts(), 6, "ladder plan shape drifted");
    let observable = PauliString::from_label(&"Z".repeat(8));
    let compiled = CompiledPlan::compile(&plan, &observable);
    assert_eq!(compiled.backend(), PlanBackend::Contracted);
    let backend = compiled.backend_report();
    assert!(backend.frontier_ops > 0);
    assert!(
        backend.frontier_ops_uncached >= 5 * backend.frontier_ops,
        "prefix cache payoff below 5×: {} cached vs {} uncached",
        backend.frontier_ops,
        backend.frontier_ops_uncached
    );
    // And the cached sweep is still the exact decomposition.
    let uncut = uncut_plan_expectation(&circuit, &observable);
    assert!((compiled.exact_value() - uncut).abs() < 1e-8);
}

#[test]
fn prefix_cached_sweep_matches_uncached_evaluation_per_term() {
    // Differential fence for the cache itself: over full odometer
    // sweeps of mixed NME/joint plans, every prefix-cached term value
    // must match the cache-disabled from-scratch contraction to 1e−12.
    let mut saw_multi_group = false;
    for (n, budget, f, seed) in [
        (4usize, 2usize, 0.52f64, 3100u64),
        (5, 3, 0.7, 3101),
        (6, 4, 0.52, 3102),
    ] {
        let planner = CutPlanner::new(budget).with_overlap(f);
        let mut rng = StdRng::seed_from_u64(seed);
        let (_, plan) = tractable_random_circuit(n, 6, &planner, 4, &mut rng);
        let observable = PauliString::from_label(&"Z".repeat(n));
        let blocks = FragmentBlocks::build(&plan, &observable);
        let lens = blocks.group_lens();
        let total: usize = lens.iter().product();
        let mut sweep = blocks.sweep();
        for combo in 0..total {
            let mut rem = combo;
            let mut pick = vec![0usize; lens.len()];
            for g in (0..lens.len()).rev() {
                pick[g] = rem % lens[g];
                rem /= lens[g];
            }
            let cached = sweep.term_value(&pick);
            let fresh = blocks.term_value(&pick);
            assert!(
                (cached - fresh).abs() < 1e-12,
                "n={n} f={f} seed={seed} combo {combo}: cached {cached} vs fresh {fresh}"
            );
        }
        let stats = sweep.stats();
        assert_eq!(stats.terms, total);
        // A single-group plan has no prefix to share (every term is a
        // fresh fastest-digit evaluation); only multi-group odometers
        // must resume from the cache.
        if lens.len() > 1 {
            saw_multi_group = true;
            assert!(stats.prefix_hits > 0, "n={n}: sweep never hit the cache");
        }
    }
    assert!(
        saw_multi_group,
        "workloads never produced a multi-group plan"
    );
}

/// Builds a three-fragment chain on `2·budget − 1` qubits whose final
/// fragment has exactly `budget` incoming cut wires and whose widest
/// multi-wire group has `budget − 1` wires. Fragment 0 fills the budget
/// on wires `0..budget`; fragment 1 carries wire `budget − 1` through
/// the fresh wires up to `2·budget − 2`; fragment 2 re-enters wires
/// `0..budget − 1` plus fragment 1's last wire. The shared wires block
/// the merge pass (fragment 1 is not independent of fragment 2, and
/// `frag0 ∪ frag2` exceeds the budget), so the plan keeps one
/// `(budget − 1)`-wire group (0 → 2) and two single-wire groups.
fn reentrant_chain(budget: usize) -> Circuit {
    let n = 2 * budget - 1;
    let mut c = Circuit::new(n, 0);
    c.ry(0.4, 0);
    for q in 0..budget - 1 {
        c.cx(q, q + 1);
    }
    for q in budget - 1..2 * budget - 2 {
        c.cx(q, q + 1);
    }
    c.cx(2 * budget - 2, 0);
    for q in 0..budget - 2 {
        c.cx(q, q + 1);
    }
    c
}

#[test]
fn incoming_cap_boundary_pins_eligibility() {
    // Exactly MAX_INCOMING incoming wires on the final fragment ⇒
    // eligible; one more ⇒ rejected with a named reason. The chain
    // re-enters `budget - 1` of fragment 0's wires plus one of
    // fragment 1's, so budget = MAX_INCOMING lands exactly on the cap.
    let at_cap = reentrant_chain(MAX_INCOMING);
    let plan = CutPlanner::new(MAX_INCOMING)
        .with_overlap(0.8)
        .plan(&at_cap);
    let incoming = max_incoming(&plan);
    assert_eq!(incoming, MAX_INCOMING, "construction drifted off the cap");
    assert!(
        supports_contraction(&plan),
        "{:?}",
        contraction_ineligibility(&plan)
    );

    let over_cap = reentrant_chain(MAX_INCOMING + 1);
    let plan = CutPlanner::new(MAX_INCOMING + 1)
        .with_overlap(0.8)
        .plan(&over_cap);
    assert_eq!(max_incoming(&plan), MAX_INCOMING + 1);
    let reason = contraction_ineligibility(&plan).expect("over-cap plan must be rejected");
    assert!(reason.contains("MAX_INCOMING"), "unnamed reason: {reason}");
    assert!(!supports_contraction(&plan));
}

#[test]
fn joint_width_boundary_pins_eligibility() {
    // Exactly MAX_JOINT_WIRES wires in one joint-MUB group ⇒ eligible;
    // one more ⇒ rejected with a named reason. Low overlap keeps every
    // multi-wire group below the κ crossover, so the re-entrant group
    // of `budget - 1` wires plans as a joint-MUB cut.
    let at_cap = reentrant_chain(MAX_JOINT_WIRES + 1);
    let plan = CutPlanner::new(MAX_JOINT_WIRES + 1)
        .with_overlap(0.52)
        .plan(&at_cap);
    let widest = widest_joint(&plan);
    assert_eq!(widest, MAX_JOINT_WIRES, "construction drifted off the cap");
    assert!(
        supports_contraction(&plan),
        "{:?}",
        contraction_ineligibility(&plan)
    );

    let over_cap = reentrant_chain(MAX_JOINT_WIRES + 2);
    let plan = CutPlanner::new(MAX_JOINT_WIRES + 2)
        .with_overlap(0.52)
        .plan(&over_cap);
    assert_eq!(widest_joint(&plan), MAX_JOINT_WIRES + 1);
    let reason = contraction_ineligibility(&plan).expect("over-cap plan must be rejected");
    assert!(reason.contains("jointly"), "unnamed reason: {reason}");
    assert!(!supports_contraction(&plan));
}

fn max_incoming(plan: &nme_wire_cutting::wirecut::CutPlan) -> usize {
    let mut incoming = vec![0usize; plan.fragments.len()];
    for g in &plan.groups {
        incoming[g.cuts[0].dest_fragment] += g.num_wires();
    }
    incoming.into_iter().max().unwrap_or(0)
}

fn widest_joint(plan: &nme_wire_cutting::wirecut::CutPlan) -> usize {
    plan.groups
        .iter()
        .filter(|g| g.protocol == Protocol::JointMub)
        .map(|g| g.num_wires())
        .max()
        .unwrap_or(0)
}

#[test]
fn measurement_fragment_plan_contracts_and_matches_monolithic() {
    // ISSUE 10's behaviour change: a measurement/feed-forward plan
    // whose classical bits stay fragment-local used to force
    // PlanBackend::Monolithic; it now contracts (the block sums over
    // outcome branches) and its per-term values must match the
    // monolithic reference to 1e−8.
    let mut measured = Circuit::new(3, 1);
    measured.ry(0.4, 0).cx(0, 1).cx(1, 2).measure(2, 0);
    // Measure and the conditioned gate both live in the final {2, 3}
    // fragment, so the classical bit never crosses a fragment boundary.
    let mut feedforward = Circuit::new(4, 1);
    feedforward
        .ry(0.7, 0)
        .cx(0, 1)
        .cx(1, 2)
        .cx(2, 3)
        .measure(3, 0)
        .x_if(2, 0);
    for (circuit, label) in [(measured, "ZZI"), (feedforward, "ZZZZ")] {
        let plan = CutPlanner::new(2).plan(&circuit);
        assert!(!plan.groups.is_empty());
        assert!(
            supports_contraction(&plan),
            "{:?}",
            contraction_ineligibility(&plan)
        );
        let observable = PauliString::from_label(label);
        let compiled = CompiledPlan::compile(&plan, &observable);
        assert_eq!(compiled.backend(), PlanBackend::Contracted);
        assert_eq!(compiled.fallback_reason(), None);
        let mono = CompiledPlan::compile_monolithic(&plan, &observable);
        let ct = compiled.exact_terms();
        let mt = mono.exact_terms();
        assert_eq!(ct.len(), mt.len());
        for (i, (c, m)) in ct.iter().zip(mt.iter()).enumerate() {
            assert!(
                (c - m).abs() < 1e-8,
                "{label} term {i}: contracted {c} vs monolithic {m}"
            );
        }
        // Outcome branching is visible in the fragment summaries.
        assert!(compiled
            .fragment_summaries()
            .iter()
            .any(|s| s.outcome_branches > 1));
    }
}

//! Equivalence tests for the single-qubit gate-fusion pass.
//!
//! Fusion must be semantics-preserving: the fused circuit acts
//! identically on states (statevector difference ≤ 1e-10), preserves
//! branch distributions through measurement and feed-forward, and its
//! bookkeeping ([`FusionStats`]) is consistent. Pinned regressions
//! cover identity elimination and adjacent-diagonal merging.

use nme_wire_cutting::qlinalg::vector::approx_eq;
use nme_wire_cutting::qsim::{
    fuse_single_qubit_runs, haar_state, Circuit, CompiledSampler, Gate, Op, StateVector,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A gate pick: `(kind, wire_a, wire_b, angle)`; wires taken mod `n`.
type Pick = (usize, usize, usize, f64);

fn pick_strategy() -> impl Strategy<Value = Pick> {
    ((0usize..10), (0usize..8), (0usize..8), -3.0f64..3.0)
}

fn apply_picks(c: &mut Circuit, n: usize, picks: &[Pick]) {
    for &(kind, a, b, theta) in picks {
        // On a single wire there is no distinct partner for a two-qubit
        // gate; fold those picks onto Hadamards instead.
        let kind = if kind >= 8 && n < 2 { 0 } else { kind };
        let a = a % n;
        let mut b = b % n;
        if kind >= 8 && b == a {
            b = (a + 1) % n;
        }
        match kind {
            0 => c.h(a),
            1 => c.s(a),
            2 => c.t(a),
            3 => c.sdg(a),
            4 => c.gate(Gate::Tdg, &[a]),
            5 => c.rz(theta, a),
            6 => c.ry(theta, a),
            7 => c.rx(theta, a),
            8 => c.cx(a, b),
            _ => c.cz(a, b),
        };
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn fused_circuit_acts_identically(
        n in 1usize..6,
        picks in proptest::collection::vec(pick_strategy(), 1..40),
        seed in 0u64..10_000,
    ) {
        let mut c = Circuit::new(n, 0);
        apply_picks(&mut c, n, &picks);
        let (fused, stats) = fuse_single_qubit_runs(&c);

        prop_assert_eq!(stats.input_len, c.len());
        prop_assert_eq!(stats.output_len, fused.len());
        prop_assert!(fused.len() <= c.len());

        // Same action on |0…0⟩ and on a Haar-random state.
        let mut rng = StdRng::seed_from_u64(seed);
        for input in [StateVector::new(n), haar_state(n, &mut rng)] {
            let mut a = input.clone();
            let mut b = input;
            a.apply_circuit(&c);
            b.apply_circuit(&fused);
            prop_assert!(approx_eq(a.amplitudes(), b.amplitudes(), 1e-10));
            prop_assert!((b.norm() - 1.0).abs() < 1e-10);
        }
    }

    #[test]
    fn fusion_preserves_branch_distributions(
        n in 2usize..5,
        first in proptest::collection::vec(pick_strategy(), 1..12),
        second in proptest::collection::vec(pick_strategy(), 1..12),
    ) {
        // Measurement + feed-forward act as fusion barriers on the wires
        // they touch; the branch tree must be unaffected.
        let mut c = Circuit::new(n, 1);
        apply_picks(&mut c, n, &first);
        c.measure(0, 0);
        c.x_if(n - 1, 0);
        apply_picks(&mut c, n, &second);
        let (fused, _) = fuse_single_qubit_runs(&c);

        let original = CompiledSampler::compile_dense(&c, None);
        let rewritten = CompiledSampler::compile_dense(&fused, None);
        prop_assert_eq!(original.leaves().len(), rewritten.leaves().len());
        for (a, b) in original.leaves().iter().zip(rewritten.leaves()) {
            prop_assert_eq!(a.clbits, b.clbits);
            prop_assert!((a.probability - b.probability).abs() < 1e-10);
            prop_assert!(
                approx_eq(a.state.amplitudes(), b.state.amplitudes(), 1e-9)
            );
        }
        for q in 0..n {
            prop_assert!(
                (original.exact_expval_z(q) - rewritten.exact_expval_z(q)).abs() < 1e-10
            );
        }
    }
}

/// Pinned regression: an identity product (H·H) on one wire disappears
/// entirely while untouched wires keep their gates verbatim.
#[test]
fn identity_run_is_eliminated() {
    let mut c = Circuit::new(2, 0);
    c.h(0);
    c.h(0);
    c.x(1);
    let (fused, stats) = fuse_single_qubit_runs(&c);

    assert_eq!(fused.len(), 1);
    assert!(matches!(&fused.instructions()[0].op, Op::Gate(Gate::X, _)));
    assert_eq!(stats.input_len, 3);
    assert_eq!(stats.output_len, 1);
    assert!(stats.runs_eliminated >= 1);
}

/// Pinned regression: identity up to a *global phase* is also
/// eliminated — Rz(π/4)·T† is e^{-iπ/8}·I.
#[test]
fn global_phase_identity_is_eliminated() {
    let mut c = Circuit::new(1, 0);
    c.rz(std::f64::consts::FRAC_PI_4, 0);
    c.gate(Gate::Tdg, &[0]);
    let (fused, stats) = fuse_single_qubit_runs(&c);
    assert!(fused.is_empty(), "got {} instructions", fused.len());
    assert_eq!(stats.output_len, 0);
}

/// Pinned regression: adjacent diagonal gates merge into one unitary
/// whose matrix equals the analytic product — Rz(a)·Rz(b)·T acts as a
/// single diagonal with relative phase a + b + π/4.
#[test]
fn adjacent_diagonal_gates_merge() {
    let (a, b) = (0.3, -1.1);
    let mut c = Circuit::new(1, 0);
    c.rz(a, 0);
    c.rz(b, 0);
    c.t(0);
    let (fused, stats) = fuse_single_qubit_runs(&c);

    assert_eq!(fused.len(), 1);
    let Op::Gate(g, _) = &fused.instructions()[0].op else {
        panic!("expected a fused gate");
    };
    assert_eq!(g.name(), "u1q");
    assert_eq!(stats.gates_fused, 3);

    // Compare against the analytic single diagonal, up to global phase:
    // amplitudes of (|0⟩+|1⟩)/√2 pick up relative phase a + b + π/4.
    let mut sv = StateVector::new(1);
    sv.apply_gate(&Gate::H, &[0]);
    sv.apply_circuit(&fused);
    let rel = a + b + std::f64::consts::FRAC_PI_4;
    let amp0 = sv.amplitude(0);
    let amp1 = sv.amplitude(1);
    let got =
        (amp1.im.atan2(amp1.re) - amp0.im.atan2(amp0.re)).rem_euclid(2.0 * std::f64::consts::PI);
    let want = rel.rem_euclid(2.0 * std::f64::consts::PI);
    assert!(
        (got - want).abs() < 1e-10 || (got - want).abs() > 2.0 * std::f64::consts::PI - 1e-10,
        "relative phase {got} vs {want}"
    );
}

/// Singleton gates that have nothing to fuse with round-trip verbatim,
/// keeping compiled artifacts byte-stable.
#[test]
fn singletons_round_trip_verbatim() {
    let mut c = Circuit::new(3, 0);
    c.h(0);
    c.cx(0, 1);
    c.t(2);
    c.cz(1, 2);
    let (fused, stats) = fuse_single_qubit_runs(&c);
    assert_eq!(fused.instructions(), c.instructions());
    assert!(stats.is_noop());
}

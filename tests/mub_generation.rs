//! Property tests for the Galois-field MUB construction behind the joint
//! multi-wire cut: complete sets for `n = 1..3` wires must be pairwise
//! mutually unbiased and satisfy the MUB dephasing identity
//! `Σ_b D_b(ρ) = ρ + Tr(ρ)·I` to ≤ 1e−10 on arbitrary probes, and the
//! joint-cut overhead must equal the closed form `κ(n) = 2^{n+1} − 1`.

use nme_wire_cutting::qlinalg::{c64, Matrix};
use nme_wire_cutting::wirecut::joint::{are_mutually_unbiased, JointWireCut};
use nme_wire_cutting::wirecut::mub;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_hermitian(d: usize, seed: u64) -> Matrix {
    let mut rng = StdRng::seed_from_u64(seed);
    let raw = Matrix::from_fn(d, d, |_, _| {
        c64(rng.gen::<f64>() - 0.5, rng.gen::<f64>() - 0.5)
    });
    raw.add(&raw.dagger()).scale_re(0.5)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn generated_sets_are_pairwise_mutually_unbiased(n in 1usize..4) {
        let bases = mub::mub_bases(n);
        prop_assert_eq!(bases.len(), (1 << n) + 1);
        for (i, u) in bases.iter().enumerate() {
            prop_assert!(u.is_unitary(1e-10), "basis {i} of n={n} not unitary");
            for (j, v) in bases.iter().enumerate().skip(i + 1) {
                prop_assert!(
                    are_mutually_unbiased(u, v, 1e-10),
                    "bases {i},{j} of n={n} not mutually unbiased"
                );
            }
        }
    }

    #[test]
    fn dephasing_identity_holds_on_random_probes(n in 1usize..4, seed in 0u64..100_000) {
        let d = 1usize << n;
        let bases = mub::mub_bases(n);
        let probe = random_hermitian(d, seed);
        let dev = mub::dephasing_identity_deviation(&bases, &probe);
        prop_assert!(dev <= 1e-10, "MUB identity deviates by {dev} at n={n}");
    }

    #[test]
    fn joint_kappa_matches_closed_form(n in 1usize..6) {
        let cut = JointWireCut::new(n);
        let expect = ((1u64 << (n + 1)) - 1) as f64;
        prop_assert!((cut.kappa() - expect).abs() < 1e-12);
        prop_assert!((cut.spec().kappa() - expect).abs() < 1e-12);
        prop_assert_eq!(cut.terms().len(), (1 << n) + 1);
        prop_assert!(cut.spec().validate(1e-9).is_ok());
    }

    #[test]
    fn construction_is_deterministic(n in 1usize..4) {
        // Memoized and fresh builds agree bit-for-bit — term ordering and
        // seeded-count regressions cannot drift across platforms/calls.
        let cached = mub::mub_bases(n);
        let fresh = mub::mub_bases_fresh(n);
        for (a, b) in cached.iter().zip(fresh.iter()) {
            prop_assert!(a.approx_eq(b, 0.0));
        }
    }
}

#[test]
fn sparse_verification_passes_up_to_five_wires() {
    for n in 1..=5 {
        JointWireCut::new(n)
            .verify(1e-8)
            .unwrap_or_else(|e| panic!("joint cut verify failed at n={n}: {e}"));
    }
}

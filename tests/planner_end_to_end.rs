//! End-to-end verification of the arbitrary-circuit cut planner: for
//! randomized circuits, the compiled multi-fragment plan must (a) stay
//! within the fragment-width budget, (b) reproduce the uncut statevector
//! expectation **exactly** through its product-QPD decomposition, and
//! (c) produce sampled estimates inside the suite's 5σ Wilson band.
//! Plans are also pinned to be deterministic for a fixed seed.

use nme_wire_cutting::experiments::plan_cut::tractable_random_circuit;
use nme_wire_cutting::experiments::stats::qpd_wilson_band;
use nme_wire_cutting::qpd::{estimate_allocated, Allocator};
use nme_wire_cutting::qsim::PauliString;
use nme_wire_cutting::wirecut::{uncut_plan_expectation, CompiledPlan, CutPlanner};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The randomized workload grid: ≥ 20 circuits spanning widths 3–6,
/// budgets strictly below the width, and overlaps on both sides of the
/// κ crossover (so both NME and joint-MUB groups are exercised).
fn workloads() -> Vec<(usize, usize, f64, u64)> {
    // (num_qubits, width_budget, overlap, seed)
    let mut w = Vec::new();
    for (i, &(n, budget)) in [(3, 2), (4, 3), (4, 2), (5, 4), (6, 5)].iter().enumerate() {
        for (j, &f) in [0.52, 0.7, 0.85, 1.0].iter().enumerate() {
            w.push((n, budget, f, 1000 + (i * 4 + j) as u64));
        }
    }
    assert!(w.len() >= 20);
    w
}

#[test]
fn random_plans_match_uncut_statevector_within_five_sigma() {
    let shots = 2048u64;
    for (n, budget, f, seed) in workloads() {
        let planner = CutPlanner::new(budget).with_overlap(f);
        let mut rng = StdRng::seed_from_u64(seed);
        let (circuit, plan) = tractable_random_circuit(n, 5, &planner, 3, &mut rng);

        // (a) Every fragment respects the width budget.
        assert!(plan.fragments.len() >= 2, "n={n} f={f}: single fragment");
        for frag in &plan.fragments {
            assert!(
                frag.width() <= budget,
                "n={n} f={f}: fragment width {} exceeds budget {budget}",
                frag.width()
            );
        }

        let observable = PauliString::from_label(&"Z".repeat(n));
        let uncut = uncut_plan_expectation(&circuit, &observable);
        let compiled = CompiledPlan::compile(&plan, &observable);

        // (b) The decomposition is an identity, not an approximation.
        assert!(
            (compiled.exact_value() - uncut).abs() < 1e-8,
            "n={n} f={f} seed={seed}: exact {} vs uncut {uncut}",
            compiled.exact_value()
        );

        // (c) One sampled estimate lands inside the 5σ Wilson band.
        let band = qpd_wilson_band(&compiled.spec, &compiled.exact_terms(), shots, 5.0);
        let est = estimate_allocated(
            &compiled.spec,
            &compiled.samplers(),
            shots,
            Allocator::Proportional,
            &mut rng,
        );
        assert!(
            (est - uncut).abs() <= band,
            "n={n} f={f} seed={seed}: estimate {est} outside 5σ band {band} of {uncut} \
             (κ = {:.3})",
            compiled.report().kappa
        );
    }
}

#[test]
fn plans_are_deterministic_for_a_fixed_seed() {
    let planner = CutPlanner::new(3).with_overlap(0.7);
    let mut a = StdRng::seed_from_u64(42);
    let mut b = StdRng::seed_from_u64(42);
    let (ca, pa) = tractable_random_circuit(4, 6, &planner, 3, &mut a);
    let (cb, pb) = tractable_random_circuit(4, 6, &planner, 3, &mut b);
    assert_eq!(ca, cb, "same seed must draw the same circuit");
    // The plan is a pure function of the circuit: identical reports,
    // fragment assignments and cut groups, byte for byte.
    assert_eq!(
        format!("{:?}", pa.report()),
        format!("{:?}", pb.report()),
        "plan reports differ for identical inputs"
    );
    assert_eq!(format!("{:?}", pa.fragments), format!("{:?}", pb.fragments));
    assert_eq!(format!("{:?}", pa.groups), format!("{:?}", pb.groups));
    // And the compiled spec enumerates identical term structure.
    let obs = PauliString::from_label("ZZZZ");
    let sa = CompiledPlan::compile(&pa, &obs);
    let sb = CompiledPlan::compile(&pb, &obs);
    let la: Vec<&str> = sa.spec.terms().iter().map(|t| t.label.as_str()).collect();
    let lb: Vec<&str> = sb.spec.terms().iter().map(|t| t.label.as_str()).collect();
    assert_eq!(la, lb);
    assert!((sa.spec.kappa() - sb.spec.kappa()).abs() < 1e-15);
}

#[test]
fn overlap_controls_protocol_mix_across_the_crossover() {
    // The same circuit planned below and above f*(n) flips multi-wire
    // groups between joint-MUB and NME, and never cheapens κ by lowering
    // the overlap.
    let mut rng = StdRng::seed_from_u64(7);
    let planner_lo = CutPlanner::new(3).with_overlap(0.52);
    let (circuit, plan_lo) = tractable_random_circuit(5, 6, &planner_lo, 3, &mut rng);
    let plan_hi = CutPlanner::new(3).with_overlap(0.9).plan(&circuit);
    assert_eq!(plan_lo.num_cuts(), plan_hi.num_cuts());
    assert!(
        plan_lo.kappa() >= plan_hi.kappa() - 1e-12,
        "lower overlap produced cheaper plan: {} < {}",
        plan_lo.kappa(),
        plan_hi.kappa()
    );
}

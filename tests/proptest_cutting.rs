//! Property-based tests on the wire cuts themselves: for *any* resource
//! parameter and *any* input state, the defining identities of the paper
//! must hold exactly.

use nme_wire_cutting::entangle::{recurrence_round, PhiK, RecurrenceProtocol};
use nme_wire_cutting::qsim::{
    fragment_circuit, haar_unitary, random_unitary_circuit, CircuitDag, Pauli,
};
use nme_wire_cutting::wirecut::mixed::DistillThenCut;
use nme_wire_cutting::wirecut::{
    identity_distance, theory, uncut_expectation, CutPlanner, NmeCut, PreparedCut, WireCut,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn theorem2_channel_identity_for_any_k(k in 0.0f64..1.0) {
        let cut = NmeCut::new(k);
        let d = identity_distance(&cut);
        prop_assert!(d < 1e-8, "identity violated at k={k}: {d}");
    }

    #[test]
    fn kappa_attains_corollary1_for_any_k(k in 0.0f64..1.0) {
        let cut = NmeCut::new(k);
        prop_assert!((cut.kappa() - theory::gamma_phi_k(k)).abs() < 1e-10);
        // And Theorem 1 via the overlap agrees.
        let f = PhiK::new(k).overlap();
        prop_assert!((cut.kappa() - theory::gamma_from_overlap(f)).abs() < 1e-10);
    }

    #[test]
    fn exact_decomposition_matches_uncut_value(k in 0.0f64..1.0, seed in 0u64..100_000, obs_idx in 0usize..3) {
        let obs = [Pauli::X, Pauli::Y, Pauli::Z][obs_idx];
        let mut rng = StdRng::seed_from_u64(seed);
        let w = haar_unitary(2, &mut rng);
        let expect = uncut_expectation(&w, obs);
        let prepared = PreparedCut::new(&NmeCut::new(k), &w, obs);
        prop_assert!(
            (prepared.exact_value() - expect).abs() < 1e-8,
            "decomposition broken at k={k}, obs={obs:?}: {} vs {expect}",
            prepared.exact_value()
        );
    }

    #[test]
    fn overhead_interpolates_between_three_and_one(k in 0.0f64..1.0) {
        let gamma = theory::gamma_phi_k(k);
        prop_assert!((1.0 - 1e-12..=3.0 + 1e-12).contains(&gamma));
    }

    #[test]
    fn estimator_is_unbiased_for_random_inputs(k in 0.1f64..1.0, seed in 0u64..10_000) {
        // Average many cheap estimates; the mean must approach the exact
        // value within a few standard errors.
        let mut rng = StdRng::seed_from_u64(seed);
        let w = haar_unitary(2, &mut rng);
        let exact = uncut_expectation(&w, Pauli::Z);
        let prepared = PreparedCut::new(&NmeCut::new(k), &w, Pauli::Z);
        let reps = 40;
        let shots = 400;
        let mean: f64 = (0..reps)
            .map(|_| {
                nme_wire_cutting::qpd::estimate_allocated(
                    &prepared.spec,
                    &prepared.samplers(),
                    shots,
                    nme_wire_cutting::qpd::Allocator::Proportional,
                    &mut rng,
                )
            })
            .sum::<f64>() / reps as f64;
        // SE ≤ κ/√(reps·shots) ≤ 3/126 ≈ 0.024; allow 5 SEs.
        prop_assert!((mean - exact).abs() < 0.12, "bias at k={k}: mean {mean} vs exact {exact}");
    }

    #[test]
    fn pure_state_overlap_consistency(k in 0.0f64..1.0) {
        // Eq. 10 == Schmidt route == distillation-norm route, for any k.
        let phi = PhiK::new(k);
        let closed = phi.overlap();
        let schmidt = nme_wire_cutting::entangle::max_overlap_pure(&phi.statevector());
        let dec = nme_wire_cutting::entangle::schmidt(&phi.statevector(), 1);
        let dist = nme_wire_cutting::entangle::overlap_via_distillation_norm(&dec.coefficients);
        prop_assert!((closed - schmidt).abs() < 1e-9);
        prop_assert!((closed - dist).abs() < 1e-9);
    }

    #[test]
    fn local_unitaries_do_not_change_overlap(k in 0.0f64..1.0, seed in 0u64..100_000) {
        // f is LOCC-monotone and local unitaries are reversible: applying
        // them leaves f(ψ) invariant (paper Eq. 7–8).
        let mut rng = StdRng::seed_from_u64(seed);
        let mut sv = PhiK::new(k).statevector();
        let before = nme_wire_cutting::entangle::max_overlap_pure(&sv);
        let ua = haar_unitary(2, &mut rng);
        let ub = haar_unitary(2, &mut rng);
        sv.apply_matrix1(&ua, 0);
        sv.apply_matrix1(&ub, 1);
        let after = nme_wire_cutting::entangle::max_overlap_pure(&sv);
        prop_assert!((before - after).abs() < 1e-8);
    }

    #[test]
    fn bell_overlaps_define_valid_probabilities(k in 0.0f64..1.0) {
        let q = PhiK::new(k).bell_overlaps();
        prop_assert!(q.iter().all(|&x| x >= -1e-12));
        prop_assert!((q.iter().sum::<f64>() - 1.0).abs() < 1e-10);
    }

    #[test]
    fn pair_consumption_between_one_and_two(k in 0.0f64..1.0) {
        let pairs = theory::pairs_per_sample(k);
        prop_assert!((1.0 - 1e-12..=2.0 + 1e-12).contains(&pairs));
    }

    #[test]
    fn recurrence_rounds_stay_normalised_and_cptp(
        a in 0.01f64..1.0,
        b in 0.01f64..1.0,
        c in 0.01f64..1.0,
        d in 0.01f64..1.0,
        rounds in 0usize..6,
        protocol_idx in 0usize..2,
    ) {
        // Any valid Bell-diagonal weight vector must stay a valid one
        // (normalised, non-negative — i.e. the induced Pauli channel
        // stays CPTP) under arbitrarily many recurrence rounds of
        // either protocol.
        let protocol = [RecurrenceProtocol::Dejmps, RecurrenceProtocol::Bbpssw][protocol_idx];
        let total = a + b + c + d;
        let mut q = [a / total, b / total, c / total, d / total];
        for round in 0..rounds {
            let (next, s) = recurrence_round(q, protocol);
            prop_assert!(s > 0.0 && s <= 1.0 + 1e-12, "round {round}: success {s}");
            let sum: f64 = next.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-10, "round {round}: sum {sum}");
            prop_assert!(next.iter().all(|&w| w >= -1e-12), "round {round}: {next:?}");
            q = next;
        }
    }

    #[test]
    fn distilled_kappa_never_beats_theorem1(
        fid in 0.51f64..0.98,
        split_a in 0.01f64..1.0,
        split_b in 0.01f64..1.0,
        rounds in 0usize..5,
        protocol_idx in 0usize..2,
    ) {
        // κ_eff of the composed scheme is still an inversion cut — on
        // the distilled resource — so Theorem 1 at the distilled
        // weights lower-bounds it for any input and depth. (q_I > ½
        // keeps every recurrence level invertible: DEJMPS preserves
        // q_I > ½, and all channel eigenvalues are ≥ 2q_I − 1.)
        let protocol = [RecurrenceProtocol::Dejmps, RecurrenceProtocol::Bbpssw][protocol_idx];
        let rest = 1.0 - fid;
        let total = split_a + split_b + 1.0;
        let weights = [
            fid,
            rest * split_a / total,
            rest * split_b / total,
            rest / total,
        ];
        let pipeline = DistillThenCut::new(weights, rounds, protocol);
        let kappa_eff = pipeline.kappa_eff();
        let gamma = pipeline.gamma_distilled();
        prop_assert!(
            kappa_eff >= gamma - 1e-9,
            "κ_eff {kappa_eff} beats γ(distilled) {gamma} for {weights:?}, m={rounds}"
        );
        // The raw-pair axis only ever adds cost on top.
        prop_assert!(pipeline.kappa_pair() >= kappa_eff - 1e-12);
    }

    #[test]
    fn planner_structural_invariants_for_random_circuits(
        seed in 0u64..100_000,
        n in 3usize..7,
        gates in 3usize..9,
    ) {
        // For any random circuit and any budget < n, the planner's
        // fragmentation and cut derivation must satisfy its structural
        // contract — no sampling involved, so these hold exactly.
        let budget = n - 1;
        let mut rng = StdRng::seed_from_u64(seed);
        let circuit = random_unitary_circuit(n, gates, &mut rng);
        let plan = CutPlanner::new(budget).plan(&circuit);

        // A cut set implies at least two fragments, and never vice versa
        // with zero cuts spanning multiple fragments of a connected wire.
        if plan.num_cuts() > 0 {
            prop_assert!(plan.fragments.len() >= 2);
        }
        // Every cut names a real circuit wire and an ordered fragment pair.
        for group in &plan.groups {
            prop_assert!(!group.cuts.is_empty());
            for cut in &group.cuts {
                prop_assert!(cut.wire < n, "cut wire {} out of range", cut.wire);
                prop_assert!(cut.source_fragment < cut.dest_fragment);
                prop_assert!(cut.dest_fragment < plan.fragments.len());
            }
        }
        // Fragmentation is a partition: gate counts are preserved, every
        // fragment respects the budget, and each fragment circuit is a
        // well-formed acyclic DAG.
        let total: usize = plan.fragments.iter().map(|f| f.instructions.len()).sum();
        prop_assert_eq!(total, circuit.len(), "fragmentation dropped gates");
        for frag in &plan.fragments {
            prop_assert!(frag.width() <= budget);
            let fc = fragment_circuit(&circuit, frag);
            prop_assert!(CircuitDag::new(&fc).is_acyclic());
        }
        // Plan γ is the product of per-cut γ: at f = 0.8 every group is
        // in the NME regime (f*(n) < 2/3 for all n), so κ = γ(0.8)^cuts.
        let plan = CutPlanner::new(budget).with_overlap(0.8).plan(&circuit);
        let gamma = theory::gamma_from_overlap(0.8);
        let expect = gamma.powi(plan.num_cuts() as i32);
        prop_assert!(
            (plan.kappa() - expect).abs() < 1e-9 * expect,
            "κ {} vs γ^cuts {expect} at {} cuts",
            plan.kappa(),
            plan.num_cuts()
        );
    }
}

//! Property-based tests on the wire cuts themselves: for *any* resource
//! parameter and *any* input state, the defining identities of the paper
//! must hold exactly.

use nme_wire_cutting::entangle::PhiK;
use nme_wire_cutting::qsim::{haar_unitary, Pauli};
use nme_wire_cutting::wirecut::{
    identity_distance, theory, uncut_expectation, NmeCut, PreparedCut, WireCut,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn theorem2_channel_identity_for_any_k(k in 0.0f64..1.0) {
        let cut = NmeCut::new(k);
        let d = identity_distance(&cut);
        prop_assert!(d < 1e-8, "identity violated at k={k}: {d}");
    }

    #[test]
    fn kappa_attains_corollary1_for_any_k(k in 0.0f64..1.0) {
        let cut = NmeCut::new(k);
        prop_assert!((cut.kappa() - theory::gamma_phi_k(k)).abs() < 1e-10);
        // And Theorem 1 via the overlap agrees.
        let f = PhiK::new(k).overlap();
        prop_assert!((cut.kappa() - theory::gamma_from_overlap(f)).abs() < 1e-10);
    }

    #[test]
    fn exact_decomposition_matches_uncut_value(k in 0.0f64..1.0, seed in 0u64..100_000, obs_idx in 0usize..3) {
        let obs = [Pauli::X, Pauli::Y, Pauli::Z][obs_idx];
        let mut rng = StdRng::seed_from_u64(seed);
        let w = haar_unitary(2, &mut rng);
        let expect = uncut_expectation(&w, obs);
        let prepared = PreparedCut::new(&NmeCut::new(k), &w, obs);
        prop_assert!(
            (prepared.exact_value() - expect).abs() < 1e-8,
            "decomposition broken at k={k}, obs={obs:?}: {} vs {expect}",
            prepared.exact_value()
        );
    }

    #[test]
    fn overhead_interpolates_between_three_and_one(k in 0.0f64..1.0) {
        let gamma = theory::gamma_phi_k(k);
        prop_assert!((1.0 - 1e-12..=3.0 + 1e-12).contains(&gamma));
    }

    #[test]
    fn estimator_is_unbiased_for_random_inputs(k in 0.1f64..1.0, seed in 0u64..10_000) {
        // Average many cheap estimates; the mean must approach the exact
        // value within a few standard errors.
        let mut rng = StdRng::seed_from_u64(seed);
        let w = haar_unitary(2, &mut rng);
        let exact = uncut_expectation(&w, Pauli::Z);
        let prepared = PreparedCut::new(&NmeCut::new(k), &w, Pauli::Z);
        let reps = 40;
        let shots = 400;
        let mean: f64 = (0..reps)
            .map(|_| {
                nme_wire_cutting::qpd::estimate_allocated(
                    &prepared.spec,
                    &prepared.samplers(),
                    shots,
                    nme_wire_cutting::qpd::Allocator::Proportional,
                    &mut rng,
                )
            })
            .sum::<f64>() / reps as f64;
        // SE ≤ κ/√(reps·shots) ≤ 3/126 ≈ 0.024; allow 5 SEs.
        prop_assert!((mean - exact).abs() < 0.12, "bias at k={k}: mean {mean} vs exact {exact}");
    }

    #[test]
    fn pure_state_overlap_consistency(k in 0.0f64..1.0) {
        // Eq. 10 == Schmidt route == distillation-norm route, for any k.
        let phi = PhiK::new(k);
        let closed = phi.overlap();
        let schmidt = nme_wire_cutting::entangle::max_overlap_pure(&phi.statevector());
        let dec = nme_wire_cutting::entangle::schmidt(&phi.statevector(), 1);
        let dist = nme_wire_cutting::entangle::overlap_via_distillation_norm(&dec.coefficients);
        prop_assert!((closed - schmidt).abs() < 1e-9);
        prop_assert!((closed - dist).abs() < 1e-9);
    }

    #[test]
    fn local_unitaries_do_not_change_overlap(k in 0.0f64..1.0, seed in 0u64..100_000) {
        // f is LOCC-monotone and local unitaries are reversible: applying
        // them leaves f(ψ) invariant (paper Eq. 7–8).
        let mut rng = StdRng::seed_from_u64(seed);
        let mut sv = PhiK::new(k).statevector();
        let before = nme_wire_cutting::entangle::max_overlap_pure(&sv);
        let ua = haar_unitary(2, &mut rng);
        let ub = haar_unitary(2, &mut rng);
        sv.apply_matrix1(&ua, 0);
        sv.apply_matrix1(&ub, 1);
        let after = nme_wire_cutting::entangle::max_overlap_pure(&sv);
        prop_assert!((before - after).abs() < 1e-8);
    }

    #[test]
    fn bell_overlaps_define_valid_probabilities(k in 0.0f64..1.0) {
        let q = PhiK::new(k).bell_overlaps();
        prop_assert!(q.iter().all(|&x| x >= -1e-12));
        prop_assert!((q.iter().sum::<f64>() - 1.0).abs() < 1e-10);
    }

    #[test]
    fn pair_consumption_between_one_and_two(k in 0.0f64..1.0) {
        let pairs = theory::pairs_per_sample(k);
        prop_assert!((1.0 - 1e-12..=2.0 + 1e-12).contains(&pairs));
    }
}

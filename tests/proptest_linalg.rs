//! Property-based tests for the linear-algebra substrate: the invariants
//! every downstream computation silently relies on.

use nme_wire_cutting::qlinalg::{
    c64, eigh, lstsq, qr, svd, unitary_with_first_column, Complex64, Matrix,
};
use proptest::prelude::*;

/// Strategy: complex matrix with entries in [-1, 1]².
fn matrix_strategy(n: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec((-1.0f64..1.0, -1.0f64..1.0), n * n).prop_map(move |entries| {
        Matrix::from_fn(n, n, |i, j| {
            let (re, im) = entries[i * n + j];
            c64(re, im)
        })
    })
}

/// Strategy: nonzero complex vector of length `n`, normalised.
fn unit_vector_strategy(n: usize) -> impl Strategy<Value = Vec<Complex64>> {
    proptest::collection::vec((-1.0f64..1.0, -1.0f64..1.0), n)
        .prop_filter("nonzero", |v| {
            v.iter().any(|(re, im)| re.abs() + im.abs() > 0.1)
        })
        .prop_map(|v| {
            let mut out: Vec<Complex64> = v.into_iter().map(|(re, im)| c64(re, im)).collect();
            nme_wire_cutting::qlinalg::vector::normalize(&mut out);
            out
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn qr_reconstructs_and_q_unitary(a in matrix_strategy(4)) {
        let d = qr(&a);
        prop_assert!(d.q.is_unitary(1e-8));
        prop_assert!(d.q.matmul(&d.r).approx_eq(&a, 1e-8));
        for i in 0..4 {
            for j in 0..i {
                prop_assert!(d.r[(i, j)].abs() < 1e-10);
            }
        }
    }

    #[test]
    fn svd_reconstructs_with_sorted_nonnegative_sigma(a in matrix_strategy(4)) {
        let d = svd(&a);
        prop_assert!(d.reconstruct().approx_eq(&a, 1e-7));
        for w in d.sigma.windows(2) {
            prop_assert!(w[0] >= w[1] - 1e-12);
        }
        prop_assert!(d.sigma.iter().all(|&s| s >= -1e-12));
        // Frobenius norm equals the 2-norm of singular values.
        let fro = a.fro_norm();
        let sig: f64 = d.sigma.iter().map(|s| s * s).sum::<f64>().sqrt();
        prop_assert!((fro - sig).abs() < 1e-8);
    }

    #[test]
    fn eigh_reconstructs_hermitian(a in matrix_strategy(4)) {
        let h = a.add(&a.dagger()).scale_re(0.5);
        let e = eigh(&h);
        prop_assert!(e.reconstruct().approx_eq(&h, 1e-7));
        prop_assert!(e.vectors.is_unitary(1e-7));
        let tr: f64 = e.values.iter().sum();
        prop_assert!((tr - h.trace().re).abs() < 1e-8);
    }

    #[test]
    fn lstsq_solves_consistent_systems(a in matrix_strategy(4), xs in proptest::collection::vec((-1.0f64..1.0, -1.0f64..1.0), 4)) {
        // Regularise: A + 2I is comfortably nonsingular for entries in [-1,1].
        let reg = a.add(&Matrix::identity(4).scale_re(2.0 + a.fro_norm()));
        let x_true: Vec<Complex64> = xs.into_iter().map(|(re, im)| c64(re, im)).collect();
        let b = reg.matvec(&x_true);
        let x = lstsq(&reg, &b);
        for (got, want) in x.iter().zip(x_true.iter()) {
            prop_assert!(got.approx_eq(*want, 1e-6), "{got:?} vs {want:?}");
        }
    }

    #[test]
    fn completion_unitary_works_for_any_unit_vector(v in unit_vector_strategy(4)) {
        let u = unitary_with_first_column(&v);
        prop_assert!(u.is_unitary(1e-8));
        for (i, want) in v.iter().enumerate() {
            prop_assert!(u[(i, 0)].approx_eq(*want, 1e-9));
        }
    }

    #[test]
    fn kron_is_associative_and_mixed_product(a in matrix_strategy(2), b in matrix_strategy(2), c in matrix_strategy(2)) {
        let left = a.kron(&b).kron(&c);
        let right = a.kron(&b.kron(&c));
        prop_assert!(left.approx_eq(&right, 1e-10));
        // (A⊗B)(A⊗B) = A²⊗B²
        let sq = a.kron(&b).matmul(&a.kron(&b));
        let direct = a.matmul(&a).kron(&b.matmul(&b));
        prop_assert!(sq.approx_eq(&direct, 1e-9));
    }

    #[test]
    fn dagger_antimultiplicative(a in matrix_strategy(3), b in matrix_strategy(3)) {
        let lhs = a.matmul(&b).dagger();
        let rhs = b.dagger().matmul(&a.dagger());
        prop_assert!(lhs.approx_eq(&rhs, 1e-10));
    }

    #[test]
    fn trace_is_similarity_invariant(a in matrix_strategy(3)) {
        // Tr[QAQ†] = Tr[A] for unitary Q from QR of a fixed matrix.
        let seed = Matrix::from_fn(3, 3, |i, j| c64((i + 2 * j) as f64 * 0.31 - 1.0, (i * j) as f64 * 0.17));
        let q = qr(&seed).q;
        let conj = q.matmul(&a).matmul(&q.dagger());
        prop_assert!(conj.trace().approx_eq(a.trace(), 1e-9));
    }
}

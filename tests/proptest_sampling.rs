//! Property-based equivalence tests for the batched shot-sampling
//! engine: on random circuits with mid-circuit measurement and
//! feed-forward, one `sample_batch` call must induce the same leaf
//! distribution as repeated per-shot draws — held to a 5σ multinomial
//! bound on total-variation distance against the exact probabilities.

use nme_wire_cutting::qsample::{tv_bound_5_sigma, tv_distance};
use nme_wire_cutting::qsim::{Circuit, CompiledSampler};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// One random single- or two-qubit operation on an `n`-qubit register.
#[derive(Clone, Debug)]
enum OpPick {
    H(usize),
    Ry(usize, f64),
    Rz(usize, f64),
    Cx(usize, usize),
}

fn op_strategy(n: usize) -> impl Strategy<Value = OpPick> {
    prop_oneof![
        (0..n).prop_map(OpPick::H),
        ((0..n), -3.0f64..3.0).prop_map(|(q, t)| OpPick::Ry(q, t)),
        ((0..n), -3.0f64..3.0).prop_map(|(q, t)| OpPick::Rz(q, t)),
        ((0..n), (0..n))
            .prop_filter("distinct", |(a, b)| a != b)
            .prop_map(|(a, b)| OpPick::Cx(a, b)),
    ]
}

/// Builds a 3-qubit circuit: a random unitary prefix, then a measurement
/// cascade with feed-forward so the branch tree is non-trivial.
fn build(picks: &[OpPick]) -> Circuit {
    let n = 3;
    let mut c = Circuit::new(n, n);
    for p in picks {
        match *p {
            OpPick::H(q) => c.h(q),
            OpPick::Ry(q, t) => c.ry(t, q),
            OpPick::Rz(q, t) => c.rz(t, q),
            OpPick::Cx(a, b) => c.cx(a, b),
        };
    }
    c.measure(0, 0);
    c.x_if(1, 0); // feed-forward: classical branch structure
    c.measure(1, 1);
    c.measure(2, 2);
    c
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn batched_counts_match_exact_leaf_probabilities(
        picks in proptest::collection::vec(op_strategy(3), 1..16),
        seed in 0u64..1 << 32,
    ) {
        let c = build(&picks);
        let sampler = CompiledSampler::compile(&c, None);
        let probs: Vec<f64> = sampler.leaves().iter().map(|l| l.probability).collect();
        let total: f64 = probs.iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-12, "leaf probabilities sum to {total}");

        let shots = 4000u64;
        let mut rng = StdRng::seed_from_u64(seed);
        let counts = sampler.sample_batch(shots, &mut rng);
        prop_assert_eq!(counts.iter().sum::<u64>(), shots);

        let tv = tv_distance(&counts, &probs, shots);
        let bound = tv_bound_5_sigma(&probs, shots);
        prop_assert!(tv <= bound, "TV {tv} exceeds 5σ bound {bound} ({} leaves)", probs.len());
    }

    #[test]
    fn batched_and_per_shot_leaf_histograms_agree(
        picks in proptest::collection::vec(op_strategy(3), 1..12),
        seed in 0u64..1 << 32,
    ) {
        let c = build(&picks);
        let sampler = CompiledSampler::compile(&c, None);
        let probs: Vec<f64> = sampler.leaves().iter().map(|l| l.probability).collect();
        let shots = 2000u64;

        let mut rng = StdRng::seed_from_u64(seed);
        let batched = sampler.sample_batch(shots, &mut rng);

        // Per-shot reference: histogram sample_leaf draws by leaf index
        // (match on the clbits pattern, which is unique per leaf).
        let mut rng = StdRng::seed_from_u64(seed ^ 0x9E37_79B9_7F4A_7C15);
        let mut per_shot = vec![0u64; probs.len()];
        for _ in 0..shots {
            let clbits = sampler.sample_leaf(&mut rng).clbits;
            let idx = sampler
                .leaves()
                .iter()
                .position(|l| l.clbits == clbits)
                .expect("sampled leaf not in leaf table");
            per_shot[idx] += 1;
        }
        prop_assert_eq!(per_shot.iter().sum::<u64>(), shots);

        // Both empirical distributions must sit within 5σ of the exact
        // one; the triangle inequality then bounds their mutual distance.
        let bound = tv_bound_5_sigma(&probs, shots);
        let tv_batched = tv_distance(&batched, &probs, shots);
        let tv_per_shot = tv_distance(&per_shot, &probs, shots);
        prop_assert!(tv_batched <= bound, "batched TV {tv_batched} > {bound}");
        prop_assert!(tv_per_shot <= bound, "per-shot TV {tv_per_shot} > {bound}");
    }

    #[test]
    fn zero_shot_batches_never_panic(
        picks in proptest::collection::vec(op_strategy(3), 1..12),
    ) {
        let c = build(&picks);
        let sampler = CompiledSampler::compile(&c, None);
        let mut rng = StdRng::seed_from_u64(7);
        let counts = sampler.sample_batch(0, &mut rng);
        prop_assert!(counts.iter().all(|&n| n == 0));
        prop_assert_eq!(sampler.sample_counts(0, &mut rng).total(), 0);
        prop_assert_eq!(sampler.sample_z_batch(0, 0, &mut rng), 0.0);
    }
}

//! Property-based tests for the simulator: unitarity, Born statistics,
//! agreement between statevector and density-matrix backends, and the
//! branch-tree sampler's exactness.

use nme_wire_cutting::qsim::{
    embed_unitary, execute_density, fuse_single_qubit_runs, haar_unitary, Circuit, CompiledSampler,
    DensityMatrix, Gate, Pauli, PauliString, StateVector,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Strategy: a random unitary circuit description on `n` qubits.
#[derive(Clone, Debug)]
enum GatePick {
    H(usize),
    S(usize),
    T(usize),
    Ry(usize, f64),
    Rz(usize, f64),
    Cx(usize, usize),
    Cz(usize, usize),
}

fn gate_strategy(n: usize) -> impl Strategy<Value = GatePick> {
    prop_oneof![
        (0..n).prop_map(GatePick::H),
        (0..n).prop_map(GatePick::S),
        (0..n).prop_map(GatePick::T),
        ((0..n), -3.0f64..3.0).prop_map(|(q, t)| GatePick::Ry(q, t)),
        ((0..n), -3.0f64..3.0).prop_map(|(q, t)| GatePick::Rz(q, t)),
        ((0..n), (0..n))
            .prop_filter("distinct", |(a, b)| a != b)
            .prop_map(|(a, b)| GatePick::Cx(a, b)),
        ((0..n), (0..n))
            .prop_filter("distinct", |(a, b)| a != b)
            .prop_map(|(a, b)| GatePick::Cz(a, b)),
    ]
}

fn build(n: usize, picks: &[GatePick]) -> Circuit {
    let mut c = Circuit::new(n, 0);
    for p in picks {
        match *p {
            GatePick::H(q) => c.h(q),
            GatePick::S(q) => c.s(q),
            GatePick::T(q) => c.t(q),
            GatePick::Ry(q, t) => c.ry(t, q),
            GatePick::Rz(q, t) => c.rz(t, q),
            GatePick::Cx(a, b) => c.cx(a, b),
            GatePick::Cz(a, b) => c.cz(a, b),
        };
    }
    c
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn random_circuits_preserve_norm(picks in proptest::collection::vec(gate_strategy(3), 1..24)) {
        let c = build(3, &picks);
        let mut sv = StateVector::new(3);
        sv.apply_circuit(&c);
        prop_assert!((sv.norm() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn circuit_matrix_matches_statevector(picks in proptest::collection::vec(gate_strategy(2), 1..16)) {
        let c = build(2, &picks);
        let u = c.to_matrix();
        prop_assert!(u.is_unitary(1e-9));
        let mut sv = StateVector::new(2);
        sv.apply_circuit(&c);
        let col = u.col(0);
        prop_assert!(nme_wire_cutting::qlinalg::vector::approx_eq(sv.amplitudes(), &col, 1e-9));
    }

    #[test]
    fn inverse_circuit_restores_state(picks in proptest::collection::vec(gate_strategy(3), 1..20)) {
        let c = build(3, &picks);
        let mut sv = StateVector::new(3);
        sv.apply_circuit(&c);
        sv.apply_circuit(&c.inverse());
        prop_assert!(sv.amplitude(0).approx_eq(nme_wire_cutting::qlinalg::C_ONE, 1e-8));
    }

    #[test]
    fn density_and_statevector_agree(picks in proptest::collection::vec(gate_strategy(2), 1..14)) {
        let c = build(2, &picks);
        let mut sv = StateVector::new(2);
        sv.apply_circuit(&c);
        let via_density = execute_density(&c, &DensityMatrix::new(2));
        prop_assert!(via_density.matrix().approx_eq(&sv.to_density(), 1e-9));
    }

    #[test]
    fn pauli_expectations_bounded(picks in proptest::collection::vec(gate_strategy(3), 1..20), label in prop_oneof![Just("ZII"), Just("IXI"), Just("ZZZ"), Just("XYZ")]) {
        let c = build(3, &picks);
        let mut sv = StateVector::new(3);
        sv.apply_circuit(&c);
        let e = sv.expval_pauli(&PauliString::from_label(label));
        prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&e), "⟨{label}⟩ = {e}");
    }

    #[test]
    fn measurement_probabilities_sum_to_one(picks in proptest::collection::vec(gate_strategy(3), 1..20), q in 0usize..3) {
        let c = build(3, &picks);
        let mut sv = StateVector::new(3);
        sv.apply_circuit(&c);
        let p1 = sv.prob_one(q);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&p1));
        let mut sv0 = sv.clone();
        let mut sv1 = sv.clone();
        let got0 = sv0.collapse(q, false);
        let got1 = sv1.collapse(q, true);
        prop_assert!((got0 + got1 - 1.0).abs() < 1e-9);
    }

    #[test]
    fn compiled_sampler_branch_probabilities_sum_to_one(picks in proptest::collection::vec(gate_strategy(3), 1..16), seed in 0u64..1000) {
        // Append two measurements with feed-forward to exercise branching.
        let mut c = Circuit::new(3, 2);
        c.compose(&build(3, &picks));
        c.measure(0, 0);
        c.x_if(2, 0);
        c.measure(1, 1);
        c.z_if(2, 1);
        let sampler = CompiledSampler::compile(&c, None);
        let total: f64 = sampler.leaves().iter().map(|l| l.probability).sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
        // Exact expectation equals density-matrix execution.
        let rho = execute_density(&c, &DensityMatrix::new(3));
        let z = rho.partial_trace(&[2]).expval_pauli(&PauliString::single(1, 0, Pauli::Z));
        prop_assert!((sampler.exact_expval_z(2) - z).abs() < 1e-9);
        // And sampled leaves stay normalised.
        let mut rng = StdRng::seed_from_u64(seed);
        let leaf = sampler.sample_leaf(&mut rng);
        prop_assert!((leaf.state.norm() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn haar_unitaries_are_unitary(seed in 0u64..10_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let u = haar_unitary(2, &mut rng);
        prop_assert!(u.is_unitary(1e-9));
    }

    #[test]
    fn batched_unitary_matches_embedding_at_arity_3_and_4(
        k in 3usize..5,
        seed in 0u64..10_000,
        picks in proptest::collection::vec(gate_strategy(5), 1..10),
    ) {
        // The general k-qubit scatter kernel must agree with the dense
        // embedding for Haar-random 8×8 and 16×16 unitaries applied to
        // arbitrary (shuffled, non-contiguous) wire subsets.
        let n = 5;
        let mut rng = StdRng::seed_from_u64(seed);
        let u = haar_unitary(1 << k, &mut rng);
        let mut qubits: Vec<usize> = (0..n).collect();
        for i in (1..n).rev() {
            let j = rng.gen_range(0..i + 1);
            qubits.swap(i, j);
        }
        qubits.truncate(k);

        let mut sv = StateVector::new(n);
        sv.apply_circuit(&build(n, &picks));
        let expect = embed_unitary(&u, &qubits, n).matvec(sv.amplitudes());
        sv.apply_gate(&Gate::Unitary(u), &qubits);
        prop_assert!(nme_wire_cutting::qlinalg::vector::approx_eq(sv.amplitudes(), &expect, 1e-9));
        prop_assert!((sv.norm() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn fused_execution_preserves_norm_and_state(picks in proptest::collection::vec(gate_strategy(4), 1..30)) {
        let c = build(4, &picks);
        let (fused, _) = fuse_single_qubit_runs(&c);
        let mut via_fused = StateVector::new(4);
        via_fused.apply_circuit(&fused);
        prop_assert!((via_fused.norm() - 1.0).abs() < 1e-9);
        let mut direct = StateVector::new(4);
        direct.apply_circuit(&c);
        prop_assert!(nme_wire_cutting::qlinalg::vector::approx_eq(via_fused.amplitudes(), direct.amplitudes(), 1e-9));
    }

    #[test]
    fn embed_unitary_commutes_with_application(picks in proptest::collection::vec(gate_strategy(3), 1..8), q in 0usize..3) {
        // Applying a 1q gate via the embedding matrix equals the kernel.
        let c = build(3, &picks);
        let mut sv = StateVector::new(3);
        sv.apply_circuit(&c);
        let g = Gate::T;
        let full = nme_wire_cutting::qsim::embed_unitary(&g.matrix(), &[q], 3);
        let expect = full.matvec(sv.amplitudes());
        sv.apply_gate(&g, &[q]);
        prop_assert!(nme_wire_cutting::qlinalg::vector::approx_eq(sv.amplitudes(), &expect, 1e-9));
    }
}

//! End-to-end suite for the cutting-as-a-service layer
//! (`wirecut::service`), pinning the ISSUE's acceptance criteria:
//!
//! * job results are **byte-identical** for a fixed `(seed, plan)`
//!   across thread counts ∈ {1, 2, 7} and across cold vs warm plan
//!   cache, solo or in a fleet;
//! * sequential (variance-adaptive) allocation realises **no more
//!   estimator variance** than the static proportional split on an
//!   asymmetric-σ workload at equal total shots;
//! * the compiled-plan cache dedupes by content and the streamed batch
//!   partials are consistent with the final outcome.

use nme_wire_cutting::qsim::{Circuit, PauliString};
use nme_wire_cutting::wirecut::planner::CutPlanner;
use nme_wire_cutting::wirecut::service::{AllocationMode, CutService, EstimationJob};

/// A near-classical ladder: one wire cut, three NME terms.
fn ladder() -> Circuit {
    let mut c = Circuit::new(3, 0);
    c.x(0);
    c.ry(0.25, 0);
    c.cx(0, 1);
    c.ry(0.15, 1);
    c.cx(1, 2);
    c
}

/// A 4-qubit chain whose plan has two cut groups (9 product terms) with
/// strongly **asymmetric** per-term σ (≈ 0.30 to ≈ 1.00 at overlap
/// 0.55): near-classical stretches make some stitched terms almost
/// deterministic while the basis-rotated terms stay maximally noisy —
/// the regime sequential allocation exists for.
fn asymmetric_circuit() -> Circuit {
    let mut c = Circuit::new(4, 0);
    c.x(0);
    c.ry(0.3, 1);
    c.cx(0, 1);
    c.cx(1, 2);
    c.ry(0.2, 2);
    c.cx(2, 3);
    c
}

fn fleet_jobs() -> Vec<EstimationJob> {
    let obs3 = PauliString::from_label("ZZZ");
    let obs4 = PauliString::from_label("ZZZZ");
    let mut jobs = Vec::new();
    for seed in 0..4u64 {
        for mode in [
            AllocationMode::StaticProportional,
            AllocationMode::StaticUniform,
            AllocationMode::Sequential,
        ] {
            jobs.push(
                EstimationJob::new(ladder(), obs3.clone(), 1000, seed)
                    .with_batches(3)
                    .with_mode(mode),
            );
            jobs.push(
                EstimationJob::new(asymmetric_circuit(), obs4.clone(), 1000, seed)
                    .with_batches(3)
                    .with_mode(mode),
            );
        }
    }
    jobs
}

fn service() -> CutService {
    CutService::new(CutPlanner::new(2).with_overlap(0.8))
}

#[test]
fn job_results_are_byte_identical_across_threads_and_cache_state() {
    let jobs = fleet_jobs();
    // Reference: every job solo on its own cold service.
    let reference: Vec<_> = jobs.iter().map(|j| service().run_job(j)).collect();
    // One shared, progressively warming service must reproduce the bits
    // at every thread count; then once more fully warm.
    let shared = service();
    for threads in [1usize, 2, 7] {
        let fleet = shared.run_jobs(&jobs, threads);
        for (r, f) in reference.iter().zip(fleet.iter()) {
            assert_eq!(
                r.estimate.to_bits(),
                f.estimate.to_bits(),
                "estimate differs at {threads} threads"
            );
            assert_eq!(r.updates, f.updates, "partials differ at {threads} threads");
            assert_eq!(r.allocation, f.allocation);
            assert_eq!(r.plan_key, f.plan_key);
        }
    }
    let (hits, _) = shared.cache_stats();
    assert!(hits > 0, "warm passes should have hit the cache");
    // Two distinct plans across the whole fleet.
    assert_eq!(shared.cache_len(), 2);
}

#[test]
fn sequential_variance_beats_static_proportional_on_asymmetric_workload() {
    let svc = CutService::new(CutPlanner::new(2).with_overlap(0.55));
    let obs = PauliString::from_label("ZZZZ");
    let circuit = asymmetric_circuit();
    let shots = 1600u64;
    let reps = 2000u64;
    let run = |mode: AllocationMode| -> (f64, f64) {
        let mut sum = 0.0;
        let mut sumsq = 0.0;
        for seed in 0..reps {
            let out = svc.run_job(
                &EstimationJob::new(circuit.clone(), obs.clone(), shots, seed)
                    .with_batches(4)
                    .with_mode(mode),
            );
            assert_eq!(out.allocation.iter().sum::<u64>(), shots, "equal budgets");
            sum += out.estimate;
            sumsq += out.estimate * out.estimate;
        }
        let n = reps as f64;
        (sum / n, (sumsq - sum * sum / n) / (n - 1.0))
    };
    let (mean_static, var_static) = run(AllocationMode::StaticProportional);
    let (mean_seq, var_seq) = run(AllocationMode::Sequential);
    // Both unbiased…
    let exact = svc.compiled(&circuit, &obs).0.exact_value();
    let se = (var_static / reps as f64).sqrt();
    assert!(
        (mean_static - exact).abs() < 5.0 * se,
        "static biased: {mean_static} vs {exact}"
    );
    assert!(
        (mean_seq - exact).abs() < 5.0 * se,
        "sequential biased: {mean_seq} vs {exact}"
    );
    // …and sequential realises strictly less variance here (the
    // measured ratio is ≈ 0.89 through the contracted backend;
    // everything is deterministic, so this is a fixed number, not a
    // flaky statistic — 2000 repetitions keep it clear of the
    // variance-estimator noise floor that a draw-sequence change could
    // otherwise flip).
    assert!(
        var_seq < var_static,
        "sequential variance {var_seq} not below static {var_static}"
    );
}

#[test]
fn cold_and_warm_cache_serve_identical_bits() {
    let job = EstimationJob::new(ladder(), PauliString::from_label("ZZZ"), 2000, 99);
    let svc = service();
    let cold = svc.run_job(&job);
    assert!(!cold.cache_hit);
    let warm = svc.run_job(&job);
    assert!(warm.cache_hit);
    assert_eq!(cold.estimate.to_bits(), warm.estimate.to_bits());
    assert_eq!(cold.updates, warm.updates);
    // Clearing the cache forces recompilation — still the same bits.
    svc.clear_cache();
    let recompiled = svc.run_job(&job);
    assert!(!recompiled.cache_hit);
    assert_eq!(cold.estimate.to_bits(), recompiled.estimate.to_bits());
}

#[test]
fn streamed_partials_are_consistent_with_the_outcome() {
    let svc = service();
    let job = EstimationJob::new(ladder(), PauliString::from_label("ZZZ"), 1500, 5).with_batches(4);
    let mut streamed = Vec::new();
    let out = svc.run_job_with(&job, |u| streamed.push(*u));
    assert_eq!(streamed, out.updates);
    assert_eq!(out.updates.len(), 4);
    assert_eq!(out.updates.iter().map(|u| u.shots_used).sum::<u64>(), 1500);
    assert_eq!(
        out.updates.last().unwrap().estimate.to_bits(),
        out.estimate.to_bits()
    );
    // Partials tighten toward exact as the budget accumulates: the last
    // partial must not be the worst of the stream.
    let errs: Vec<f64> = out
        .updates
        .iter()
        .map(|u| (u.estimate - out.exact).abs())
        .collect();
    let worst = errs.iter().cloned().fold(0.0f64, f64::max);
    assert!(
        errs.last().unwrap() <= &worst,
        "final partial is the worst estimate: {errs:?}"
    );
}

//! Determinism suite for the configuration-grid sharding engine: every
//! migrated experiment must produce **byte-identical** CSV rows for any
//! worker count, the engine must preserve grid order under deliberate
//! completion-order jitter (the regression for the old sort-by-index
//! sink), and the per-shard counter-based RNG streams must be pairwise
//! non-overlapping with statistically sound pooled output.

use nme_wire_cutting::experiments::{
    allocation, distill_cut, fig6, grid::GridKey, grid::ShardedGrid, joint_cut, joint_scaling,
    multicut, noise, overhead, parallel_map_indexed, plan_cut, service_load, werner, werner_sweep,
};
use nme_wire_cutting::qsample::{stream_block, StreamRng};
use proptest::prelude::*;
use rand::RngCore;

/// The thread counts every experiment is held byte-identical across.
const THREAD_COUNTS: [usize; 4] = [1, 2, 7, 0]; // 0 = default

fn assert_csv_invariant<F: Fn(usize) -> String>(name: &str, run_at: F) {
    let reference = run_at(THREAD_COUNTS[0]);
    assert!(
        reference.lines().count() > 1,
        "{name}: suspiciously empty CSV"
    );
    for &threads in &THREAD_COUNTS[1..] {
        let other = run_at(threads);
        assert_eq!(
            reference, other,
            "{name}: CSV differs between 1 thread and {threads} threads"
        );
    }
}

#[test]
fn fig6_csv_is_thread_count_invariant() {
    assert_csv_invariant("fig6", |threads| {
        fig6::run(&fig6::Fig6Config {
            num_states: 24,
            shot_checkpoints: vec![250, 1000],
            overlaps: vec![0.5, 0.8, 1.0],
            seed: 7,
            threads,
        })
        .to_table()
        .to_csv()
    });
}

#[test]
fn joint_scaling_csvs_are_thread_count_invariant() {
    let cfg = |threads| joint_scaling::JointScalingConfig {
        max_wires: 3,
        nme_max_wires: 2,
        overlaps: vec![0.5, 0.75, 1.0],
        shot_wires: vec![1, 2],
        shot_grid: vec![200, 1600],
        num_states: 4,
        repetitions: 4,
        seed: 11,
        threads,
    };
    assert_csv_invariant("joint_scaling/crossover", |t| {
        joint_scaling::crossover_table(&cfg(t)).to_csv()
    });
    assert_csv_invariant("joint_scaling/nme", |t| {
        joint_scaling::nme_sweep_table(&cfg(t)).to_csv()
    });
    assert_csv_invariant("joint_scaling/shots", |t| {
        joint_scaling::shots_table(&cfg(t)).to_csv()
    });
}

#[test]
fn werner_csv_is_thread_count_invariant() {
    assert_csv_invariant("werner", |threads| {
        werner::run(&werner::WernerConfig {
            p_values: vec![0.5, 0.8, 1.0],
            shots: 600,
            num_states: 5,
            repetitions: 6,
            seed: 2,
            threads,
        })
        .to_csv()
    });
}

#[test]
fn werner_sweep_csv_is_thread_count_invariant() {
    assert_csv_invariant("werner_sweep", |threads| {
        werner_sweep::run(&werner_sweep::WernerSweepConfig {
            p_steps: 6,
            shots: 512,
            num_states: 4,
            repetitions: 10,
            threads,
            ..Default::default()
        })
        .to_csv()
    });
}

#[test]
fn distill_cut_csvs_are_thread_count_invariant() {
    let cfg = |threads| distill_cut::DistillCutConfig {
        p_steps: 4,
        max_rounds: 2,
        shots: 512,
        num_states: 4,
        repetitions: 8,
        threads,
        ..Default::default()
    };
    assert_csv_invariant("distill_cut", |t| distill_cut::run(&cfg(t)).to_csv());
    // The frontier is closed-form, but pin it through the same gate so
    // a future sampling-backed column can't silently regress.
    assert_csv_invariant("distill_cut/frontier", |t| {
        distill_cut::frontier(&cfg(t)).to_csv()
    });
}

#[test]
fn overhead_csv_is_thread_count_invariant() {
    assert_csv_invariant("overhead", |threads| {
        overhead::to_table(&overhead::run(&overhead::OverheadConfig {
            k_values: vec![0.0, 0.5, 1.0],
            shots: 500,
            repetitions: 20,
            num_states: 4,
            seed: 5,
            threads,
        }))
        .to_csv()
    });
}

#[test]
fn allocation_csv_is_thread_count_invariant() {
    assert_csv_invariant("allocation", |threads| {
        allocation::run(&allocation::AllocationConfig {
            overlaps: vec![0.6, 0.9],
            shots: 600,
            num_states: 6,
            repetitions: 6,
            seed: 1,
            threads,
        })
        .to_csv()
    });
}

#[test]
fn multicut_csv_is_thread_count_invariant() {
    assert_csv_invariant("multicut", |threads| {
        multicut::run(&multicut::MultiCutConfig {
            wire_counts: vec![1, 2],
            overlaps: vec![0.5, 1.0],
            shots: 600,
            num_states: 4,
            repetitions: 4,
            seed: 3,
            threads,
        })
        .to_csv()
    });
}

#[test]
fn noise_csv_is_thread_count_invariant() {
    assert_csv_invariant("noise", |threads| {
        noise::run(&noise::NoiseConfig {
            k_values: vec![0.0, 1.0],
            noise_levels: vec![0.0, 0.02],
            shots: 500,
            num_states: 3,
            repetitions: 4,
            seed: 4,
            threads,
        })
        .to_csv()
    });
}

#[test]
fn plan_cut_csv_is_thread_count_invariant() {
    assert_csv_invariant("plan_cut", |threads| {
        plan_cut::run(&plan_cut::PlanCutConfig {
            num_qubits: 3,
            gates: 5,
            width_budget: 2,
            overlaps: vec![0.52, 0.9],
            max_cuts: 2,
            shots: 512,
            num_circuits: 3,
            repetitions: 4,
            seed: 23,
            threads,
            ..Default::default()
        })
        .to_csv()
    });
}

#[test]
fn service_load_csv_is_thread_count_invariant() {
    assert_csv_invariant("service_load", |threads| {
        service_load::run(&service_load::ServiceLoadConfig {
            num_qubits: 3,
            gates: 5,
            width_budget: 2,
            max_cuts: 2,
            num_circuits: 2,
            shots: 512,
            repetitions: 6,
            threads,
            ..Default::default()
        })
        .to_csv()
    });
}

#[test]
fn joint_cut_csv_is_thread_count_invariant() {
    assert_csv_invariant("joint_cut", |threads| {
        joint_cut::run(&joint_cut::JointConfig {
            wire_counts: vec![1, 2],
            shots: 600,
            num_states: 3,
            repetitions: 4,
            seed: 5,
            threads,
        })
        .to_csv()
    });
}

// ---------------------------------------------------------------------
// Ordering-hazard regression: the result sink must be slot-addressed.
// ---------------------------------------------------------------------

/// Deliberate shard jitter: early grid items are slow, late items fast,
/// so *completion* order is roughly the reverse of grid order. An engine
/// that surfaces completion order (the old push-then-sort sink, with the
/// sort removed or keyed wrongly) fails this; the slot-vector sink
/// passes by construction.
#[test]
fn grid_order_survives_reverse_completion_jitter() {
    let n = 40usize;
    let configs: Vec<u64> = (0..n as u64).collect();
    let out = ShardedGrid::new(configs, 0).with_threads(8).run(|&c, _| {
        std::thread::sleep(std::time::Duration::from_micros(300 * (n as u64 - c)));
        c
    });
    assert_eq!(out, (0..n as u64).collect::<Vec<_>>());
    // Same property for the item-level primitive.
    let out = parallel_map_indexed(n, 8, |i| {
        std::thread::sleep(std::time::Duration::from_micros(300 * (n - i) as u64));
        i
    });
    assert_eq!(out, (0..n).collect::<Vec<_>>());
}

// ---------------------------------------------------------------------
// Per-shard RNG streams: counter-space disjointness + pooled statistics.
// ---------------------------------------------------------------------

/// The stream ids the engine derives for the real experiment grids must
/// be pairwise distinct: distinct `(seed, stream)` pairs read disjoint
/// counter spaces of the PRF by construction, so pairwise-distinct ids
/// are exactly counter-space disjointness of the shard streams.
#[test]
fn experiment_grid_streams_are_pairwise_disjoint() {
    // The densest grid any experiment builds: the full E15 sweep plus a
    // joint-scaling-shaped (n, f, shots) grid.
    let mut cells: Vec<(f64, u64)> = Vec::new();
    let sweep = werner_sweep::WernerSweepConfig::default();
    for &p in &sweep.p_grid() {
        for s in 0..sweep.num_states as u64 {
            cells.push((p, s));
        }
    }
    let grid = ShardedGrid::new(cells, sweep.seed);
    let ids = grid.stream_ids();
    let unique: std::collections::HashSet<u64> = ids.iter().copied().collect();
    assert_eq!(unique.len(), ids.len(), "werner_sweep stream collision");

    // The E16 (p, m, state) grid on top of the same stream space.
    let sweep = distill_cut::DistillCutConfig::default();
    let mut cells: Vec<(f64, u64, u64)> = Vec::new();
    for &p in &sweep.p_grid() {
        for &m in &sweep.m_grid() {
            for s in 0..sweep.num_states as u64 {
                cells.push((p, m as u64, s));
            }
        }
    }
    let ids: Vec<u64> = cells.iter().map(|c| c.grid_key()).collect();
    let unique: std::collections::HashSet<u64> = ids.iter().copied().collect();
    assert_eq!(unique.len(), ids.len(), "distill_cut stream collision");

    let joint: Vec<(usize, f64, u64)> = (1..=5usize)
        .flat_map(|n| {
            [0.5, 0.6, 0.7, 0.8, 0.9, 0.95, 1.0]
                .into_iter()
                .flat_map(move |f| (0..100u64).map(move |s| (n, f, s)))
        })
        .collect();
    let ids: Vec<u64> = joint.iter().map(|c| c.grid_key()).collect();
    let unique: std::collections::HashSet<u64> = ids.iter().copied().collect();
    assert_eq!(unique.len(), ids.len(), "joint grid stream collision");

    // The E17 planner grid: (overlap, circuit) cells plus the shared
    // circuit-lane keys, all in one stream space — no collisions allowed
    // between per-cell streams and the paired circuit streams.
    let sweep = plan_cut::PlanCutConfig::default();
    let mut ids: Vec<u64> = Vec::new();
    for &f in &sweep.overlaps {
        for s in 0..sweep.num_circuits as u64 {
            ids.push((f, s).grid_key());
        }
    }
    for s in 0..sweep.num_circuits as u64 {
        ids.push((0xE17u64, s).grid_key());
    }
    let unique: std::collections::HashSet<u64> = ids.iter().copied().collect();
    assert_eq!(unique.len(), ids.len(), "plan_cut stream collision");
}

/// Draws pooled across many shard streams stay uniform: chi-square over
/// 256 top-byte bins at a 5σ threshold.
#[test]
fn pooled_shard_draws_pass_chi_square() {
    let sweep = werner_sweep::WernerSweepConfig::default();
    let mut hist = [0u64; 256];
    let mut total = 0u64;
    for &p in &sweep.p_grid() {
        for s in 0..sweep.num_states as u64 {
            let mut rng = nme_wire_cutting::experiments::keyed_stream(sweep.seed, &(p, s));
            for _ in 0..256 {
                hist[(rng.next_u64() >> 56) as usize] += 1;
                total += 1;
            }
        }
    }
    let expect = total as f64 / 256.0;
    let chi2: f64 = hist
        .iter()
        .map(|&o| (o as f64 - expect) * (o as f64 - expect) / expect)
        .sum();
    let bound = 255.0 + 5.0 * (2.0 * 255.0f64).sqrt();
    assert!(chi2 < bound, "pooled chi2 {chi2} exceeds {bound}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random (seed, stream, stream') with distinct stream ids never
    /// replay each other's sequences, and outputs match the documented
    /// block law.
    #[test]
    fn distinct_streams_never_alias(seed in 0u64..u64::MAX, stream in 0u64..1_000_000) {
        let other = stream.wrapping_add(1);
        let mut a = StreamRng::new(seed, stream);
        let mut b = StreamRng::new(seed, other);
        let va: Vec<u64> = (0..32).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..32).map(|_| b.next_u64()).collect();
        prop_assert_ne!(&va, &vb);
        for (i, &v) in va.iter().enumerate() {
            prop_assert_eq!(v, stream_block(seed, stream, i as u64));
        }
    }

    /// The engine's output is invariant under any tested thread count
    /// for random synthetic grids (the property behind every CSV test
    /// above, at the engine level).
    #[test]
    fn engine_output_is_thread_invariant(seed in 0u64..u64::MAX, n in 1usize..40) {
        let configs: Vec<u64> = (0..n as u64).collect();
        let reference = ShardedGrid::new(configs.clone(), seed)
            .with_threads(1)
            .run(|&c, ctx| (c, ctx.rng().next_u64()));
        for threads in [2usize, 7] {
            let other = ShardedGrid::new(configs.clone(), seed)
                .with_threads(threads)
                .run(|&c, ctx| (c, ctx.rng().next_u64()));
            prop_assert_eq!(&reference, &other);
        }
    }
}

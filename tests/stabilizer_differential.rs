//! Differential-testing suite fencing the stabilizer fast path.
//!
//! Random Clifford circuits (up to 10 qubits, with mid-circuit
//! measurement and feed-forward) run through the tableau simulator and
//! the dense backends must agree: exact amplitudes (up to global phase)
//! for the unitary part, identical branch distributions for the
//! compiled hybrid vs the pristine dense compiler, and 5σ
//! total-variation bounds for shot-sampled measurement statistics.
//! Across the property tests (80 + 80 cases) and the seeded sweep
//! (60 circuits) every run checks well over 200 random circuits.

use std::collections::BTreeMap;

use nme_wire_cutting::qsample::{tv_bound_5_sigma, tv_distance};
use nme_wire_cutting::qsim::{Circuit, CompiledSampler, Gate, StateVector, Tableau};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A Clifford gate pick: `(kind, wire_a, wire_b)` with wires taken
/// modulo the circuit width at build time.
type Pick = (usize, usize, usize);

fn pick_strategy() -> impl Strategy<Value = Pick> {
    ((0usize..11), (0usize..10), (0usize..10))
}

/// Appends `picks` to `c`, remapping wires into `0..n` and splitting
/// colliding two-qubit wire pairs.
fn apply_picks(c: &mut Circuit, n: usize, picks: &[Pick]) {
    for &(kind, a, b) in picks {
        let a = a % n;
        let mut b = b % n;
        if kind >= 7 && b == a {
            b = (a + 1) % n;
        }
        match kind {
            0 => c.h(a),
            1 => c.s(a),
            2 => c.sdg(a),
            3 => c.gate(Gate::SX, &[a]),
            4 => c.x(a),
            5 => c.y(a),
            6 => c.z(a),
            7 => c.cx(a, b),
            8 => c.cz(a, b),
            9 => c.gate(Gate::CY, &[a, b]),
            _ => c.swap(a, b),
        };
    }
}

fn build_unitary(n: usize, picks: &[Pick]) -> Circuit {
    let mut c = Circuit::new(n, 0);
    apply_picks(&mut c, n, picks);
    c
}

/// A Clifford circuit with two mid-circuit measurements and
/// feed-forward corrections between the unitary blocks.
fn build_measured(n: usize, first: &[Pick], second: &[Pick]) -> Circuit {
    let mut c = Circuit::new(n, 2);
    apply_picks(&mut c, n, first);
    c.measure(0, 0);
    c.x_if(n - 1, 0);
    apply_picks(&mut c, n, second);
    c.measure(1, 1);
    c.z_if(n - 1, 1);
    c
}

/// |⟨a|b⟩| — 1 exactly when the states agree up to global phase.
fn fidelity(a: &StateVector, b: &StateVector) -> f64 {
    let mut re = 0.0;
    let mut im = 0.0;
    for (x, y) in a.amplitudes().iter().zip(b.amplitudes()) {
        re += x.re * y.re + x.im * y.im;
        im += x.re * y.im - x.im * y.re;
    }
    (re * re + im * im).sqrt()
}

/// Aggregates a compiled sampler's leaves into a classical-bit
/// distribution.
fn clbit_distribution(s: &CompiledSampler) -> BTreeMap<u64, f64> {
    let mut map = BTreeMap::new();
    for leaf in s.leaves() {
        *map.entry(leaf.clbits).or_insert(0.0) += leaf.probability;
    }
    map
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(80))]

    #[test]
    fn tableau_amplitudes_match_dense(n in 2usize..11, picks in proptest::collection::vec(pick_strategy(), 1..40)) {
        let c = build_unitary(n, &picks);

        let mut tab = Tableau::new(n);
        let mut rng = StdRng::seed_from_u64(7);
        tab.run(&c, &mut rng);
        let got = tab.to_statevector();

        let mut want = StateVector::new(n);
        want.apply_circuit(&c);

        // Same state up to global phase …
        prop_assert!((fidelity(&got, &want) - 1.0).abs() < 1e-9);
        // … and exact Born probabilities amplitude by amplitude.
        for (p, q) in got.probabilities().iter().zip(want.probabilities()) {
            prop_assert!((p - q).abs() < 1e-9);
        }
    }

    #[test]
    fn hybrid_compiler_matches_dense_compiler(
        n in 2usize..9,
        first in proptest::collection::vec(pick_strategy(), 1..16),
        second in proptest::collection::vec(pick_strategy(), 1..16),
    ) {
        let c = build_measured(n, &first, &second);
        let hybrid = CompiledSampler::compile(&c, None);
        let dense = CompiledSampler::compile_dense(&c, None);

        // Every instruction is Clifford (measure + feed-forward included),
        // so the analyzer must classify the whole circuit as prefix.
        prop_assert!(hybrid.clifford_prefix().is_full());

        // Identical classical-outcome distributions.
        let dh = clbit_distribution(&hybrid);
        let dd = clbit_distribution(&dense);
        prop_assert_eq!(dh.keys().collect::<Vec<_>>(), dd.keys().collect::<Vec<_>>());
        for (key, p) in &dh {
            prop_assert!((p - dd[key]).abs() < 1e-9, "clbits {key:b}: {p} vs {}", dd[key]);
        }

        // Identical post-measurement physics: exact ⟨Z⟩ on every wire.
        for q in 0..n {
            let a = hybrid.exact_expval_z(q);
            let b = dense.exact_expval_z(q);
            prop_assert!((a - b).abs() < 1e-9, "⟨Z_{q}⟩: {a} vs {b}");
        }
    }
}

/// Shot statistics from repeated `Tableau::run` stay within 5σ of the
/// exact dense branch distribution, over a sweep of seeded circuits.
#[test]
fn tableau_shots_within_5_sigma_of_dense() {
    const SHOTS: u64 = 2048;
    for seed in 0..60u64 {
        let mut gen = StdRng::seed_from_u64(0xC11F_F0D0 ^ seed);
        let n = gen.gen_range(2..6);
        let depth = gen.gen_range(4..24);
        let mut first = Vec::new();
        let mut second = Vec::new();
        for _ in 0..depth {
            let pick = (
                gen.gen_range(0..11),
                gen.gen_range(0..n),
                gen.gen_range(0..n),
            );
            if gen.gen::<bool>() {
                first.push(pick);
            } else {
                second.push(pick);
            }
        }
        let c = build_measured(n, &first, &second);

        let exact = clbit_distribution(&CompiledSampler::compile_dense(&c, None));
        let keys: Vec<u64> = exact.keys().copied().collect();
        let probs: Vec<f64> = keys.iter().map(|k| exact[k]).collect();

        let mut counts = vec![0u64; keys.len()];
        let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x9E37_79B9));
        for _ in 0..SHOTS {
            let mut tab = Tableau::new(n);
            let outcome = tab.run(&c, &mut rng);
            let slot = keys.iter().position(|&k| k == outcome).unwrap_or_else(|| {
                panic!("seed {seed}: sampled clbits {outcome:b} outside dense support")
            });
            counts[slot] += 1;
        }

        let tv = tv_distance(&counts, &probs, SHOTS);
        let bound = tv_bound_5_sigma(&probs, SHOTS);
        assert!(
            tv <= bound,
            "seed {seed}: TV {tv} exceeds 5σ bound {bound} over {} outcomes",
            keys.len()
        );
    }
}

/// GHZ preparation: the tableau reproduces the dense amplitudes and the
/// two-outcome distribution exactly.
#[test]
fn ghz_state_is_exact() {
    let n = 6;
    let mut c = Circuit::new(n, 0);
    c.h(0);
    for q in 1..n {
        c.cx(q - 1, q);
    }

    let mut tab = Tableau::new(n);
    let mut rng = StdRng::seed_from_u64(1);
    tab.run(&c, &mut rng);
    let got = tab.to_statevector();

    let mut want = StateVector::new(n);
    want.apply_circuit(&c);
    assert!((fidelity(&got, &want) - 1.0).abs() < 1e-12);

    let probs = got.probabilities();
    assert!((probs[0] - 0.5).abs() < 1e-12);
    assert!((probs[(1 << n) - 1] - 0.5).abs() < 1e-12);
    let middle: f64 = probs[1..(1 << n) - 1].iter().sum();
    assert!(middle < 1e-12);
}

/// Deterministic measurements are exact on both paths: a flipped qubit
/// always reads 1, and the compiled samplers agree leaf for leaf.
#[test]
fn deterministic_measurement_is_exact() {
    let mut c = Circuit::new(2, 1);
    c.x(0);
    c.cx(0, 1);
    c.measure(1, 0);

    let mut rng = StdRng::seed_from_u64(3);
    for _ in 0..32 {
        let mut tab = Tableau::new(2);
        assert_eq!(tab.run(&c, &mut rng), 1);
    }

    for sampler in [
        CompiledSampler::compile(&c, None),
        CompiledSampler::compile_dense(&c, None),
    ] {
        assert_eq!(sampler.leaves().len(), 1);
        assert_eq!(sampler.leaves()[0].clbits, 1);
        assert!((sampler.leaves()[0].probability - 1.0).abs() < 1e-12);
    }
}

/// Clifford teleportation of |+i⟩ = S·H|0⟩ with feed-forward: after the
/// corrections and an S†·H change of basis on the target, ⟨Z⟩ = +1
/// exactly on both the hybrid and the dense compiler.
#[test]
fn teleportation_feed_forward_is_exact() {
    let mut c = Circuit::new(3, 2);
    c.h(0);
    c.s(0); // payload |+i⟩ on q0
    c.h(1);
    c.cx(1, 2); // Bell pair (q1, q2)
    c.cx(0, 1);
    c.h(0);
    c.measure(0, 0);
    c.measure(1, 1);
    c.x_if(2, 1);
    c.z_if(2, 0);
    c.sdg(2);
    c.h(2); // rotate the recovered |+i⟩ back to |0⟩

    let hybrid = CompiledSampler::compile(&c, None);
    let dense = CompiledSampler::compile_dense(&c, None);
    assert!(hybrid.clifford_prefix().is_full());
    assert!((hybrid.exact_expval_z(2) - 1.0).abs() < 1e-9);
    assert!((dense.exact_expval_z(2) - 1.0).abs() < 1e-9);

    // All four measurement branches appear with probability 1/4 each.
    let dist = clbit_distribution(&hybrid);
    assert_eq!(dist.len(), 4);
    for p in dist.values() {
        assert!((p - 0.25).abs() < 1e-9);
    }
}

//! Statistical-equivalence suite for the batched shot-sampling engine.
//!
//! Fences in the counts-based sampling path (`sample_batch` /
//! `sample_z_batch`) with three kinds of guarantees:
//!
//! 1. **Confidence-interval checks** — batched ⟨Z⟩ estimates on known
//!    states (|0⟩, |+⟩, |Φ_k⟩ halves) land inside 5σ Wilson intervals
//!    around the analytic expectation at fixed seeds;
//! 2. **Deterministic regressions** — exact counts pinned for fixed
//!    seeds, so any change to the sampling algorithm or the RNG stream
//!    is caught loudly rather than silently shifting statistics;
//! 3. **Degenerate trees** — zero-probability leaves, single-leaf
//!    circuits and n = 0 batches must not panic and must agree with the
//!    per-shot path.

use nme_wire_cutting::entangle::PhiK;
use nme_wire_cutting::experiments::stats::z_expectation_interval;
use nme_wire_cutting::qsim::{Circuit, CompiledSampler};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Asserts that the batched ⟨Z⟩ mean of `sampler` on `qubit` lies inside
/// the 5σ Wilson interval around `exact`.
fn assert_z_within_ci(sampler: &CompiledSampler, qubit: usize, exact: f64, seed: u64, shots: u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let sum = sampler.sample_z_batch(qubit, shots, &mut rng);
    let (lo, hi) = z_expectation_interval(sum, shots, 5.0);
    assert!(
        lo <= exact && exact <= hi,
        "exact ⟨Z⟩ = {exact} outside 5σ interval [{lo}, {hi}] (batched mean {})",
        sum / shots as f64
    );
}

#[test]
fn zero_state_z_is_exactly_plus_one() {
    // |0⟩: P(1) = 0, so every batched shot must come out +1 — not just
    // statistically, but exactly, for any seed.
    let c = Circuit::new(1, 0);
    let sampler = CompiledSampler::compile(&c, None);
    assert_eq!(sampler.leaves().len(), 1);
    for seed in [0u64, 1, 99] {
        let mut rng = StdRng::seed_from_u64(seed);
        let shots = 10_000;
        assert_eq!(sampler.sample_z_batch(0, shots, &mut rng), shots as f64);
    }
}

#[test]
fn plus_state_z_within_binomial_ci() {
    let mut c = Circuit::new(1, 0);
    c.h(0);
    let sampler = CompiledSampler::compile(&c, None);
    for seed in [11u64, 22, 33] {
        assert_z_within_ci(&sampler, 0, 0.0, seed, 10_000);
    }
}

#[test]
fn ry_state_z_within_binomial_ci() {
    let theta = 1.234f64;
    let mut c = Circuit::new(1, 0);
    c.ry(theta, 0);
    let sampler = CompiledSampler::compile(&c, None);
    for seed in [5u64, 6, 7] {
        assert_z_within_ci(&sampler, 0, theta.cos(), seed, 20_000);
    }
}

#[test]
fn phi_k_half_z_within_binomial_ci() {
    // |Φ_k⟩ = (|00⟩ + k|11⟩)/√(1+k²): either half has
    // ⟨Z⟩ = (1 − k²)/(1 + k²).
    for &k in &[0.0f64, 0.3, 0.7, 1.0] {
        let c = PhiK::new(k).preparation_circuit(2, 0, 1);
        let sampler = CompiledSampler::compile(&c, None);
        let exact = (1.0 - k * k) / (1.0 + k * k);
        assert!((sampler.exact_expval_z(0) - exact).abs() < 1e-12);
        assert_z_within_ci(&sampler, 0, exact, 2024, 20_000);
        assert_z_within_ci(&sampler, 1, exact, 2025, 20_000);
    }
}

#[test]
fn bell_circuit_batched_counts_regression() {
    // Deterministic-seed regression: these counts are a property of the
    // sampling algorithm + RNG stream. If either changes, update the
    // pinned values *after* re-validating the statistical tests above.
    let mut c = Circuit::new(2, 2);
    c.h(0).cx(0, 1).measure(0, 0).measure(1, 1);
    let sampler = CompiledSampler::compile(&c, None);
    let mut rng = StdRng::seed_from_u64(424_242);
    let counts = sampler.sample_batch(10_000, &mut rng);
    assert_eq!(counts, vec![4945, 5055]);
}

#[test]
fn plus_state_batched_z_sum_regression() {
    let mut c = Circuit::new(1, 0);
    c.h(0);
    let sampler = CompiledSampler::compile(&c, None);
    let mut rng = StdRng::seed_from_u64(31_415);
    let sum = sampler.sample_z_batch(0, 10_000, &mut rng);
    assert_eq!(sum, -116.0);
}

#[test]
fn phi_k_batched_counts_regression() {
    let c = PhiK::new(0.5).preparation_circuit(2, 0, 1);
    let sampler = CompiledSampler::compile(&c, None);
    let mut rng = StdRng::seed_from_u64(271_828);
    let counts = sampler.sample_batch(100_000, &mut rng);
    assert_eq!(counts.iter().sum::<u64>(), 100_000);
    assert_eq!(counts, vec![100_000]);
}

#[test]
fn near_zero_probability_leaf_draws_nothing() {
    // Ry(1e-5) puts ~2.5·10⁻¹¹ of mass on the |1⟩ branch: the leaf
    // survives compilation but a million-shot batch must leave it
    // (essentially) empty without panicking or losing shots.
    let mut c = Circuit::new(1, 1);
    c.ry(1e-5, 0).measure(0, 0);
    let sampler = CompiledSampler::compile(&c, None);
    assert_eq!(sampler.leaves().len(), 2);
    let mut rng = StdRng::seed_from_u64(13);
    let shots = 1_000_000;
    let counts = sampler.sample_batch(shots, &mut rng);
    assert_eq!(counts.iter().sum::<u64>(), shots);
    // P(count ≥ 1) ≈ 2.5·10⁻⁵; allow a tiny count but catch any
    // misallocation of the remainder to the wrong leaf.
    assert!(counts[1] <= 3, "zero-probability leaf drew {}", counts[1]);
    assert!(counts[0] >= shots - 3);
}

#[test]
fn single_leaf_circuit_is_deterministic() {
    // No measurement → one leaf with probability exactly 1; batches of
    // any size collapse onto it and ⟨Z⟩ sampling reduces to a binomial.
    let mut c = Circuit::new(2, 0);
    c.ry(0.9, 0).cx(0, 1);
    let sampler = CompiledSampler::compile(&c, None);
    assert_eq!(sampler.leaves().len(), 1);
    let mut rng = StdRng::seed_from_u64(17);
    assert_eq!(sampler.sample_batch(123_456, &mut rng), vec![123_456]);
    assert_z_within_ci(&sampler, 0, (0.9f64).cos(), 18, 50_000);
}

#[test]
fn empty_batches_agree_with_per_shot_path() {
    // n = 0: no panic, no RNG consumption, and the same (empty) result
    // a zero-iteration per-shot loop would give.
    let mut c = Circuit::new(2, 2);
    c.h(0).cx(0, 1).measure(0, 0).measure(1, 1);
    let sampler = CompiledSampler::compile(&c, None);
    let mut rng = StdRng::seed_from_u64(29);
    assert_eq!(sampler.sample_batch(0, &mut rng), vec![0, 0]);
    assert_eq!(sampler.sample_z_batch(0, 0, &mut rng), 0.0);
    let counts = sampler.sample_counts(0, &mut rng);
    assert_eq!(counts.total(), 0);
    assert_eq!(counts.get(0b00), 0);
}

#[test]
fn batched_and_per_shot_z_distributions_agree_on_teleport_circuit() {
    // The full feed-forward teleportation circuit: both sampling paths
    // estimate the same ⟨Z⟩ within their joint 5σ band.
    let mut c = Circuit::new(3, 2);
    c.ry(0.9, 0);
    c.h(1).cx(1, 2);
    c.cx(0, 1).h(0);
    c.measure(0, 0).measure(1, 1);
    c.x_if(2, 1).z_if(2, 0);
    let sampler = CompiledSampler::compile(&c, None);
    let exact = (0.9f64).cos();
    let shots = 50_000u64;
    let mut rng = StdRng::seed_from_u64(41);
    let per_shot: f64 = (0..shots).map(|_| sampler.sample_z(2, &mut rng)).sum();
    let (lo, hi) = z_expectation_interval(per_shot, shots, 5.0);
    assert!(lo <= exact && exact <= hi, "per-shot CI [{lo}, {hi}]");
    let mut rng = StdRng::seed_from_u64(42);
    let batched = sampler.sample_z_batch(2, shots, &mut rng);
    let (lo, hi) = z_expectation_interval(batched, shots, 5.0);
    assert!(lo <= exact && exact <= hi, "batched CI [{lo}, {hi}]");
}

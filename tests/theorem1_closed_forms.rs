//! Smoke tests pinning the Theorem 1 closed forms to their published
//! anchor points: `γ^ρ(I) = 2/f(ρ) − 1` must give 1 for the maximally
//! entangled Bell state (`f = 1`, plain teleportation) and approach 3 as
//! entanglement vanishes (`f → 1/2`, the entanglement-free optimum of
//! Harada et al.), with the Peng et al. `κ = 4` strictly above the whole
//! curve. These are the fixed points every later refactor must preserve.

use nme_wire_cutting::entangle::{max_overlap, max_overlap_pure, phi_plus, phi_plus_density, PhiK};
use nme_wire_cutting::wirecut::theory::{
    gamma_from_overlap, gamma_phi_k, overlap_from_gamma, GAMMA_NO_ENTANGLEMENT, KAPPA_PENG,
};
use nme_wire_cutting::wirecut::{HaradaCut, NmeCut, PengCut, WireCut};

const TOL: f64 = 1e-12;

#[test]
fn bell_state_has_unit_overlap_and_unit_overhead() {
    // f(Φ⁺) = 1, via the pure-state route and the density-matrix route.
    assert!((max_overlap_pure(&phi_plus()) - 1.0).abs() < 1e-10);
    assert!((max_overlap(&phi_plus_density()) - 1.0).abs() < 1e-8);
    // Theorem 1 at f = 1: γ = 2/1 − 1 = 1 — cutting with a Bell pair is
    // free (it degrades into plain teleportation).
    assert!((gamma_from_overlap(1.0) - 1.0).abs() < TOL);
    assert!((gamma_phi_k(1.0) - 1.0).abs() < TOL);
    // The Theorem 2 construction at k = 1 attains it.
    assert!((NmeCut::new(1.0).kappa() - 1.0).abs() < TOL);
}

#[test]
fn separable_limit_recovers_entanglement_free_overhead() {
    // As entanglement → 0 (k → 0), f → 1/2 and γ → 3, the optimal
    // entanglement-free overhead (Brenner et al. / Harada et al.).
    assert!((gamma_from_overlap(0.5) - 3.0).abs() < TOL);
    assert!((gamma_phi_k(0.0) - 3.0).abs() < TOL);
    assert!((PhiK::new(0.0).overlap() - 0.5).abs() < TOL);
    // The limit is approached continuously: γ(k) = 3 − 8k + O(k²).
    for &k in &[1e-3, 1e-6, 1e-9] {
        let gamma = gamma_phi_k(k);
        assert!(
            (gamma - GAMMA_NO_ENTANGLEMENT).abs() < 10.0 * k,
            "γ(k={k}) = {gamma} not near 3"
        );
    }
}

#[test]
fn harada_baseline_matches_theorem1_at_half_overlap() {
    // The Harada et al. entanglement-free cut attains γ = 3 exactly,
    // which is Theorem 1 evaluated at the separable bound f = 1/2.
    assert!((HaradaCut.kappa() - GAMMA_NO_ENTANGLEMENT).abs() < TOL);
    assert!((HaradaCut.kappa() - gamma_from_overlap(0.5)).abs() < TOL);
}

#[test]
fn peng_baseline_stays_above_the_optimal_curve() {
    // The original Peng et al. cut costs κ = 4 — strictly worse than
    // Theorem 1 for every resource state.
    assert!((PengCut.kappa() - KAPPA_PENG).abs() < TOL);
    for i in 0..=100 {
        let k = i as f64 / 100.0;
        assert!(gamma_phi_k(k) < KAPPA_PENG - 1.0 + TOL);
    }
}

#[test]
fn overhead_is_monotone_in_entanglement() {
    // More entanglement (larger k ≤ 1) never costs more.
    let mut prev = gamma_phi_k(0.0);
    for i in 1..=100 {
        let k = i as f64 / 100.0;
        let gamma = gamma_phi_k(k);
        assert!(gamma <= prev + TOL, "γ not monotone at k={k}");
        prev = gamma;
    }
}

#[test]
fn gamma_and_overlap_are_inverse_maps() {
    for i in 0..=20 {
        let f = 0.5 + 0.5 * i as f64 / 20.0;
        assert!((overlap_from_gamma(gamma_from_overlap(f)) - f).abs() < TOL);
    }
}

#[test]
fn closed_form_agrees_with_overlap_route_for_phi_k() {
    // Corollary 1 is Theorem 1 evaluated at f(Φ_k) — the two published
    // formulas must be the same curve.
    for i in 0..=50 {
        let k = i as f64 / 50.0;
        let via_overlap = gamma_from_overlap(PhiK::new(k).overlap());
        assert!((gamma_phi_k(k) - via_overlap).abs() < 1e-10);
    }
}

//! Statistical suite for **E15** (the full Werner p-sweep): the
//! empirically measured overhead `κ̂(p)` must sit within 5 standard
//! errors of the closed form `κ_inv = (3/p − 1)/2` across the sweep,
//! the closed-form columns must be monotone in `p`, and the `p = 1`
//! endpoint must collapse to the pure-state `γ` closed form pinned by
//! `tests/theorem1_closed_forms.rs`.

use nme_wire_cutting::experiments::werner_sweep::{run, WernerSweepConfig};
use nme_wire_cutting::wirecut::theory::{gamma_from_overlap, gamma_phi_k};

/// A sweep sized so per-point standard errors resolve κ̂ to a few
/// percent: 9 points × 10 states × 64 repetitions of 2048-shot
/// estimates, all through the closed-form batched sampler path.
fn statistical_config() -> WernerSweepConfig {
    WernerSweepConfig {
        p_steps: 9,
        shots: 2048,
        num_states: 10,
        repetitions: 64,
        seed: 1508,
        threads: 0,
        ..Default::default()
    }
}

#[test]
fn kappa_hat_matches_closed_form_within_five_sigma() {
    let t = run(&statistical_config());
    for row in t.rows() {
        let (p, kappa, kappa_hat, se) = (row[0], row[3], row[4], row[5]);
        // Floor the standard error so a lucky near-zero spread cannot
        // turn sampling noise into a failure.
        let tol = 5.0 * se.max(0.01 * kappa);
        assert!(
            (kappa_hat - kappa).abs() < tol,
            "κ̂({p}) = {kappa_hat} departs from (3/p−1)/2 = {kappa} by more than 5σ ({tol})"
        );
    }
}

#[test]
fn closed_form_columns_are_monotone_in_p() {
    let t = run(&WernerSweepConfig {
        p_steps: 21,
        shots: 256,
        num_states: 2,
        repetitions: 4,
        ..Default::default()
    });
    for w in t.rows().windows(2) {
        let (a, b) = (&w[0], &w[1]);
        assert!(b[0] > a[0], "p grid not ascending");
        assert!(b[1] > a[1], "FEF not increasing in p");
        assert!(b[2] < a[2], "γ bound not decreasing in p");
        assert!(b[3] < a[3], "κ_inv not decreasing in p");
        // The inversion construction never beats the Theorem 1 bound.
        assert!(a[3] >= a[2] - 1e-9, "κ_inv below γ at p={}", a[0]);
    }
}

#[test]
fn measured_error_trends_down_with_p() {
    let t = run(&statistical_config());
    let rows = t.rows();
    let first = rows.first().unwrap();
    let last = rows.last().unwrap();
    // More noise in the resource → more estimation error at matched
    // budget; compare the endpoints, where the κ gap is 4 : 1.
    assert!(
        last[6] < first[6],
        "error did not drop from p=1/3 ({}) to p=1 ({})",
        first[6],
        last[6]
    );
    // κ̂ follows the same trend.
    assert!(
        last[4] < first[4],
        "κ̂ did not drop across the sweep: {} vs {}",
        first[4],
        last[4]
    );
}

#[test]
fn pure_endpoint_recovers_the_pure_state_closed_form() {
    let t = run(&statistical_config());
    let row = t.rows().last().unwrap();
    assert!((row[0] - 1.0).abs() < 1e-12, "sweep must end at p = 1");
    // At p = 1 the Werner state is the Bell state: FEF = 1 and both the
    // bound and the construction collapse to the pure-state closed form
    // γ(k = 1) = γ(f = 1) = 1 (plain teleportation).
    assert!((row[1] - 1.0).abs() < 1e-9, "FEF(1) = {}", row[1]);
    assert!((row[2] - gamma_from_overlap(1.0)).abs() < 1e-9);
    assert!((row[3] - gamma_phi_k(1.0)).abs() < 1e-9);
    // And the measurement agrees: κ̂(1) ≈ 1 within 5σ.
    let tol = 5.0 * row[5].max(0.01);
    assert!(
        (row[4] - 1.0).abs() < tol,
        "κ̂(1) = {} not within {tol} of 1",
        row[4]
    );
}

#[test]
fn wilson_bands_cover_at_five_sigma() {
    let t = run(&statistical_config());
    for row in t.rows() {
        // At 5σ essentially every estimate must fall inside its band...
        assert!(
            row[8] > 0.99,
            "band coverage {} at p={} too low for 5σ",
            row[8],
            row[0]
        );
        // ...and the band must be informative: it scales like
        // κ·z/√N ≲ 1.2 even at the noisiest point.
        assert!(
            row[7] < 1.2,
            "band halfwidth {} at p={} is vacuous",
            row[7],
            row[0]
        );
        // The mean |error| sits well inside the 5σ band.
        assert!(
            row[6] < row[7],
            "mean error {} exceeds its band {} at p={}",
            row[6],
            row[7],
            row[0]
        );
    }
}
